// Package checker records operation histories and verifies them against
// the paper's correctness definitions (Section 2.2):
//
//   - atomicity: the four SWMR properties — (1) no-creation, (2) reads
//     see every preceding complete write, (3) a returned value's write
//     precedes or is concurrent with the read, (4) the read hierarchy
//     (a read never returns an older value than a preceding read);
//   - regularity (Appendix D): properties (1)–(3);
//   - safeness (Appendix B): a contention-free read that succeeds wr_k
//     returns val_l with l ≥ k.
//
// The single-writer setting makes these definitions directly checkable:
// the writer assigns timestamps 1, 2, 3, … in invocation order, so the
// timestamp of a returned pair is the index k of the write wr_k, and no
// NP-hard linearizability search is needed.
package checker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"luckystore/internal/types"
)

// OpKind distinguishes writes from reads.
type OpKind int

// Operation kinds; values start at 1 so the zero value is invalid.
const (
	KindWrite OpKind = iota + 1
	KindRead
)

func (k OpKind) String() string {
	switch k {
	case KindWrite:
		return "WRITE"
	case KindRead:
		return "READ"
	default:
		return fmt.Sprintf("invalid-op-kind(%d)", int(k))
	}
}

// Op is one completed (or failed) operation as observed at its client.
type Op struct {
	ID     int
	Client types.ProcID
	Kind   OpKind
	// Key names the register the operation targeted in a multi-register
	// (KV) history; single-register histories leave it empty. Checks
	// apply per key: atomicity is a per-register property that composes
	// across keys.
	Key string
	// Value is the written pair (timestamp assigned by the writer) or
	// the returned pair.
	Value  types.Tagged
	Invoke time.Time
	Return time.Time
	// Err records an operation failure; failed operations are excluded
	// from precedence reasoning except as concurrency sources.
	Err error
	// Rounds is the operation's communication round-trip count.
	Rounds int
	// Fast mirrors Rounds == 1, recorded explicitly for table building.
	Fast bool
}

// precedes reports whether o completed before p was invoked (the
// paper's "op1 precedes op2").
func (o Op) precedes(p Op) bool { return o.Err == nil && o.Return.Before(p.Invoke) }

// Recorder accumulates operations from concurrent clients.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one operation, assigning its ID. It is safe for
// concurrent use.
func (r *Recorder) Add(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op.ID = len(r.ops)
	r.ops = append(r.ops, op)
}

// Ops returns a copy of the recorded history.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Violation describes one broken property.
type Violation struct {
	Property string
	Detail   string
	Ops      []int // IDs of the offending operations
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated: %s (ops %v)", v.Property, v.Detail, v.Ops)
}

// CheckAtomicity verifies the four SWMR atomicity properties and
// returns every violation found (empty means the history is atomic).
func CheckAtomicity(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkNoCreation()...)
	vs = append(vs, h.checkReadsSeeWrites()...)
	vs = append(vs, h.checkWriteNotFromFuture()...)
	vs = append(vs, h.checkReadHierarchy()...)
	return vs
}

// CheckRegularity verifies properties (1)–(3): like atomicity but
// without the read hierarchy, so new-old inversions between reads are
// permitted.
func CheckRegularity(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkNoCreation()...)
	vs = append(vs, h.checkReadsSeeWrites()...)
	vs = append(vs, h.checkWriteNotFromFuture()...)
	return vs
}

// CheckSafeness verifies the Appendix B safe-storage property: every
// contention-free read that succeeds wr_k returns val_l with l ≥ k.
// Reads concurrent with any write may return anything that was written
// (no-creation still applies).
func CheckSafeness(ops []Op) []Violation {
	h := buildHistory(ops)
	var vs []Violation
	vs = append(vs, h.checkNoCreation()...)
	for _, rd := range h.reads {
		if h.contended(rd) {
			continue
		}
		for _, wr := range h.writes {
			if wr.precedes(rd) && rd.Value.TS < wr.Value.TS {
				vs = append(vs, Violation{
					Property: "safeness",
					Detail: fmt.Sprintf("contention-free read returned 〈%d〉 after write 〈%d〉 completed",
						rd.Value.TS, wr.Value.TS),
					Ops: []int{wr.ID, rd.ID},
				})
			}
		}
	}
	return vs
}

// ByKey splits a history into per-key histories, preserving operation
// order within each key.
func ByKey(ops []Op) map[string][]Op {
	out := make(map[string][]Op)
	for _, op := range ops {
		out[op.Key] = append(out[op.Key], op)
	}
	return out
}

// CheckAtomicityPerKey verifies the atomicity properties independently
// for every key of a multi-register history and returns all violations,
// each prefixed with its key. Atomic registers compose: the combined
// history is linearizable iff every per-key history is.
func CheckAtomicityPerKey(ops []Op) []Violation {
	return perKey(ops, CheckAtomicity)
}

// CheckRegularityPerKey is CheckRegularity applied per key.
func CheckRegularityPerKey(ops []Op) []Violation {
	return perKey(ops, CheckRegularity)
}

func perKey(ops []Op, check func([]Op) []Violation) []Violation {
	var vs []Violation
	keys := make([]string, 0, 8)
	byKey := ByKey(ops)
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic violation order
	for _, k := range keys {
		for _, v := range check(byKey[k]) {
			if k != "" {
				v.Detail = fmt.Sprintf("key %q: %s", k, v.Detail)
			}
			vs = append(vs, v)
		}
	}
	return vs
}

// history is the indexed form of an operation list.
type history struct {
	writes []Op // completed or failed writes, invocation order
	reads  []Op // completed reads only
	// written maps a timestamp to the write that (or whose attempt)
	// assigned it. Failed/crashed writes still bind their timestamp:
	// their value may legitimately be returned by concurrent reads.
	written map[types.TS]Op
}

func buildHistory(ops []Op) *history {
	h := &history{written: make(map[types.TS]Op)}
	for _, op := range ops {
		switch op.Kind {
		case KindWrite:
			h.writes = append(h.writes, op)
			h.written[op.Value.TS] = op
		case KindRead:
			if op.Err == nil {
				h.reads = append(h.reads, op)
			}
		}
	}
	sort.Slice(h.writes, func(i, j int) bool { return h.writes[i].Invoke.Before(h.writes[j].Invoke) })
	sort.Slice(h.reads, func(i, j int) bool { return h.reads[i].Invoke.Before(h.reads[j].Invoke) })
	return h
}

// checkNoCreation: a read returns ⊥ or a pair some write bound
// (property 1 / Lemma 1).
func (h *history) checkNoCreation() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		if rd.Value.IsBottom() {
			continue
		}
		wr, ok := h.written[rd.Value.TS]
		if !ok {
			vs = append(vs, Violation{
				Property: "no-creation",
				Detail:   fmt.Sprintf("read returned %v, a timestamp no write assigned", rd.Value),
				Ops:      []int{rd.ID},
			})
			continue
		}
		if wr.Value != rd.Value {
			vs = append(vs, Violation{
				Property: "no-creation",
				Detail:   fmt.Sprintf("read returned %v but wr_%d wrote %v", rd.Value, wr.Value.TS, wr.Value),
				Ops:      []int{wr.ID, rd.ID},
			})
		}
	}
	return vs
}

// checkReadsSeeWrites: a read succeeding complete wr_k returns l ≥ k
// (property 2 / Lemma 7).
func (h *history) checkReadsSeeWrites() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		for _, wr := range h.writes {
			if wr.precedes(rd) && rd.Value.TS < wr.Value.TS {
				vs = append(vs, Violation{
					Property: "read-sees-write",
					Detail: fmt.Sprintf("read returned 〈%d〉 although wr_%d completed before it",
						rd.Value.TS, wr.Value.TS),
					Ops: []int{wr.ID, rd.ID},
				})
			}
		}
	}
	return vs
}

// checkWriteNotFromFuture: if a read returns val_k, then wr_k precedes
// or is concurrent with the read — wr_k was invoked before the read
// returned (property 3).
func (h *history) checkWriteNotFromFuture() []Violation {
	var vs []Violation
	for _, rd := range h.reads {
		if rd.Value.IsBottom() {
			continue
		}
		wr, ok := h.written[rd.Value.TS]
		if !ok {
			continue // flagged by no-creation
		}
		if rd.Return.Before(wr.Invoke) {
			vs = append(vs, Violation{
				Property: "write-from-future",
				Detail: fmt.Sprintf("read returned 〈%d〉 before wr_%d was invoked",
					rd.Value.TS, wr.Value.TS),
				Ops: []int{wr.ID, rd.ID},
			})
		}
	}
	return vs
}

// checkReadHierarchy: if rd1 precedes rd2, then rd2 returns a value at
// least as new (property 4 / Lemma 8).
func (h *history) checkReadHierarchy() []Violation {
	var vs []Violation
	for i, rd1 := range h.reads {
		for _, rd2 := range h.reads[i+1:] {
			if rd1.precedes(rd2) && rd2.Value.TS < rd1.Value.TS {
				vs = append(vs, Violation{
					Property: "read-hierarchy",
					Detail: fmt.Sprintf("read returned 〈%d〉 after a preceding read returned 〈%d〉",
						rd2.Value.TS, rd1.Value.TS),
					Ops: []int{rd1.ID, rd2.ID},
				})
			}
		}
	}
	return vs
}

// contended reports whether rd overlaps any write in time (including
// failed writes: an incomplete write whose client crashed keeps every
// later read "under contention with the ghost", Section 5).
func (h *history) contended(rd Op) bool {
	for _, wr := range h.writes {
		if wr.Err != nil {
			// A crashed write never completes: it is concurrent with
			// every operation invoked after it started.
			if wr.Invoke.Before(rd.Return) {
				return true
			}
			continue
		}
		if wr.Invoke.Before(rd.Return) && rd.Invoke.Before(wr.Return) {
			return true
		}
	}
	return false
}
