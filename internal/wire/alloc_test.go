//go:build !race

package wire

import (
	"bytes"
	"io"
	"testing"
)

// TestCodecSteadyStateAllocs pins the allocation contract of the hot
// path: encoding frames allocates nothing in steady state (pooled
// scratch buffer, single Write), and decoding a fixed-size message
// allocates only the unavoidable Message interface boxing. Payload-
// carrying messages additionally pay exactly one string per distinct
// value — memory the caller must own — which the readack case bounds.
// Excluded under -race, whose instrumentation inflates counts.
func TestCodecSteadyStateAllocs(t *testing.T) {
	for _, tc := range benchEnvelopes() {
		frame, err := AppendFrame(nil, tc.env)
		if err != nil {
			t.Fatal(err)
		}
		encAllocs := testing.AllocsPerRun(500, func() {
			if err := EncodeFrame(io.Discard, tc.env); err != nil {
				t.Fatal(err)
			}
		})
		if encAllocs > 0.5 {
			t.Errorf("EncodeFrame(%s): %.1f allocs/op, want 0 steady-state", tc.name, encAllocs)
		}
		r := bytes.NewReader(frame)
		decAllocs := testing.AllocsPerRun(500, func() {
			r.Reset(frame)
			if _, err := DecodeFrame(r); err != nil {
				t.Fatal(err)
			}
		})
		// Boxing + one string/slice per variable-size field carried by
		// the message (batch32: 32 keyed boxes + 32 inner boxes + 32
		// keys + 32 values + the Msgs slice + the Batch box).
		budget := map[string]float64{"read": 1, "readack": 4, "pw_frozen": 6, "batch32": 130}[tc.name]
		if decAllocs > budget+0.5 {
			t.Errorf("DecodeFrame(%s): %.1f allocs/op, budget %.0f", tc.name, decAllocs, budget)
		}
	}
}
