package wire

import "luckystore/internal/types"

// batchBytesBudget bounds the approximate payload carried by one Batch
// frame, at half the frame cap so framing overhead and the estimate's
// slack can never push an emitted frame past maxFrameSize.
const batchBytesBudget = maxFrameSize / 2

// batchEntriesBudget bounds the entries per emitted Batch, below
// MaxBatchEntries so a frame built here always validates at the peer.
const batchEntriesBudget = MaxBatchEntries / 2

// CoalesceKeyed rewrites a send queue for one destination into frames:
// maximal runs of Keyed messages become Batch frames — chunked so no
// batch exceeds the entry or byte budget — and everything else passes
// through in its own frame, preserving order. Both send-side coalescing
// paths (transport.Coalescer and the tcpnet server's reply writer) use
// it, so the batching limits live in exactly one place.
func CoalesceKeyed(msgs []Message) []Message {
	out := make([]Message, 0, len(msgs))
	var run []Message
	var runBytes int
	emit := func() {
		switch len(run) {
		case 0:
		case 1:
			out = append(out, run[0])
		default:
			out = append(out, Batch{Msgs: run})
		}
		run, runBytes = nil, 0
	}
	for _, m := range msgs {
		if _, ok := m.(Keyed); !ok {
			emit()
			out = append(out, m)
			continue
		}
		sz := approxSize(m)
		if len(run) >= batchEntriesBudget || (len(run) > 0 && runBytes+sz > batchBytesBudget) {
			emit()
		}
		run = append(run, m)
		runBytes += sz
	}
	emit()
	return out
}

// approxSize estimates a message's encoded payload cost: the variable
// parts (values, sets, keys) plus a per-message constant generous
// enough to cover fixed fields and framing. Only used to keep coalesced
// batches far from the frame cap, so it may be rough but must not
// wildly underestimate large values.
func approxSize(m Message) int {
	const base = 64
	switch v := m.(type) {
	case Keyed:
		return base + len(v.Key) + approxSize(v.Inner)
	case PW:
		return base + len(v.PW.Val) + len(v.W.Val) + frozenSize(v.Frozen)
	case W:
		return base + len(v.C.Val) + frozenSize(v.Frozen)
	case ReadAck:
		return base + len(v.PW.Val) + len(v.W.Val) + len(v.VW.Val) + len(v.Frozen.PW.Val)
	case PWAck:
		return base + 16*len(v.NewRead)
	case ABDWrite:
		return base + len(v.C.Val)
	case ABDReadAck:
		return base + len(v.C.Val)
	default:
		return base
	}
}

func frozenSize(fs []types.FrozenEntry) int {
	n := 0
	for _, f := range fs {
		n += 32 + len(f.PW.Val)
	}
	return n
}
