package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"luckystore/internal/types"
)

// FuzzDecodeFrame hammers the hand-rolled decoder with arbitrary byte
// streams. The contract under fuzzing: never panic, never decode
// something Validate rejects, and anything that does decode must
// re-encode and decode back to the same envelope (the format is
// canonical for decoded values).
func FuzzDecodeFrame(f *testing.F) {
	// Seeds: valid frames of several shapes, then mutations a hostile
	// peer would try — truncation, bad version, forged length, garbage.
	for _, tc := range interopEnvelopes() {
		frame, err := AppendFrame(nil, tc.env)
		if err != nil {
			f.Fatal(err)
		}
		if len(frame) > 1<<16 {
			continue // keep the corpus small; the big shapes add little
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-2])
		bad := append([]byte(nil), frame...)
		bad[4] ^= 0xFF
		f.Add(bad)
	}
	// v1 and v2 frames seed the compat decode paths (tagged values
	// without the writer component; PWs without the spec byte) so the
	// fuzzer mutates around all three layouts.
	for _, env := range v1Envelopes() {
		frame := frameV1(env.From, env.To, env.Msg)
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
	}
	for _, env := range v2Envelopes() {
		frame := frameV2(env.From, env.To, env.Msg)
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, FormatVersion, 0})
	f.Add([]byte{0, 0, 0, 2, FormatVersionV2, 0})
	f.Add([]byte{0, 0, 0, 2, FormatVersionV1, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(binary.BigEndian.AppendUint32(nil, maxFrameSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeFrame(bytes.NewReader(data))
		if err != nil {
			// Against a full in-memory stream the only legitimate error
			// classes are clean EOF, truncation, and ErrMalformed;
			// anything else is a decoder bug.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrMalformed) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if verr := Validate(env.Msg); verr != nil {
			t.Fatalf("DecodeFrame returned an invalid message: %v", verr)
		}
		var buf bytes.Buffer
		if eerr := EncodeFrame(&buf, env); eerr != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", eerr)
		}
		again, derr := DecodeFrame(&buf)
		if derr != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", derr)
		}
		if !reflect.DeepEqual(again, env) {
			t.Fatalf("re-encode round trip diverged:\n got %+v\nwant %+v", again, env)
		}
	})
}

// FuzzEncodeDecode fuzzes the round-trip property over structured
// message space: any message the fuzzer can assemble either fails
// Validate (and then must fail DecodeFrame the same way, since
// DecodeFrame validates) or round-trips deeply equal.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(0), int64(1), int64(1), uint8(1), "key", []byte("val"), []byte("val2"), uint8(0), int64(1))
	f.Add(uint8(5), int64(12), int64(3), uint8(2), "k", []byte{0, 0xFF}, []byte{}, uint8(3), int64(9))
	f.Add(uint8(10), int64(-5), int64(-7), uint8(200), "", []byte("x"), []byte("y"), uint8(250), int64(-1))

	f.Fuzz(func(t *testing.T, sel uint8, ts, tag int64, round uint8, key string, val, val2 []byte, rdr uint8, tsr int64) {
		c := types.Tagged{TS: types.TS(ts), W: types.WID(sel % 5), Val: types.Value(val)}
		c2 := types.Tagged{TS: types.TS(tag), W: types.WID(round % 3), Val: types.Value(val2)}
		frozen := []types.FrozenEntry{{Reader: types.ReaderID(int(rdr)), PW: c, TSR: types.ReaderTS(tsr)}}
		var m Message
		switch sel % 14 {
		case 0:
			m = PW{TS: types.TS(ts), PW: c, W: c2, Frozen: frozen}
		case 1:
			m = PWAck{TS: types.TS(ts), Max: types.Stamp{Seq: types.TS(tag), Writer: types.WID(round % 7)},
				NewRead: []types.ReadStamp{{Reader: types.ReaderID(int(rdr)), TSR: types.ReaderTS(tsr)}}}
		case 2:
			m = W{Round: int(round), Tag: tag, C: c, Frozen: frozen}
		case 3:
			m = WAck{Round: int(round), Tag: tag}
		case 4:
			m = Read{TSR: types.ReaderTS(tsr), Round: int(round)}
		case 5:
			m = ReadAck{TSR: types.ReaderTS(tsr), Round: int(round), PW: c, W: c2, VW: c,
				Frozen: types.FrozenPair{PW: c2, TSR: types.ReaderTS(tsr)}}
		case 6:
			m = ABDWrite{Seq: tag, C: c}
		case 7:
			m = ABDWriteAck{Seq: tag}
		case 8:
			m = ABDRead{Seq: tag}
		case 9:
			m = ABDReadAck{Seq: tag, C: c}
		case 10:
			m = Keyed{Key: key, Inner: Read{TSR: types.ReaderTS(tsr), Round: int(round)}}
		case 11:
			m = Batch{Msgs: []Message{
				Keyed{Key: key, Inner: W{Round: int(round), Tag: tag, C: c}},
				Keyed{Key: "second", Inner: Read{TSR: types.ReaderTS(tsr), Round: int(round)}},
			}}
		case 12:
			m = PW{TS: types.TS(ts), PW: c, W: c2, Spec: round%2 == 1} // nil frozen set
		case 13:
			m = PWNack{TS: types.TS(ts), Max: types.Stamp{Seq: types.TS(tag), Writer: types.WID(round % 7)}}
		}
		env := Envelope{From: types.WriterID(), To: types.ServerID(int(rdr) % 8), Msg: m}
		frame, err := AppendFrame(nil, env)
		if err != nil {
			return // structurally unencodable (cannot happen for these shapes, but harmless)
		}
		got, derr := DecodeFrame(bytes.NewReader(frame))
		valid := Validate(m) == nil
		if derr != nil {
			if valid {
				t.Fatalf("valid message failed to round trip: %v", derr)
			}
			if !errors.Is(derr, ErrMalformed) {
				t.Fatalf("invalid message rejected with wrong error class: %v", derr)
			}
			return
		}
		if !valid {
			t.Fatalf("DecodeFrame accepted a message Validate rejects: %+v", m)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, env)
		}
	})
}
