package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"luckystore/internal/types"
)

func validMessages() []Message {
	return []Message{
		PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom()},
		PW{TS: 5, PW: types.Tagged{TS: 5, Val: "v5"}, W: types.Tagged{TS: 4, Val: "v4"},
			Frozen: []types.FrozenEntry{{Reader: types.ReaderID(1), PW: types.Tagged{TS: 5, Val: "v5"}, TSR: 3}}},
		PWAck{TS: 1},
		PWAck{TS: 2, NewRead: []types.ReadStamp{{Reader: types.ReaderID(0), TSR: 7}}},
		W{Round: 2, Tag: 9, C: types.Tagged{TS: 9, Val: "x"}},
		W{Round: 3, Tag: 9, C: types.Tagged{TS: 9, Val: "x"}},
		W{Round: 1, Tag: 4, C: types.Bottom()},
		WAck{Round: 2, Tag: 9},
		Read{TSR: 1, Round: 1},
		Read{TSR: 3, Round: 4},
		ReadAck{TSR: 3, Round: 1, PW: types.Tagged{TS: 2, Val: "b"},
			W: types.Tagged{TS: 1, Val: "a"}, VW: types.Bottom(), Frozen: types.InitialFrozen()},
		ABDWrite{Seq: 1, C: types.Tagged{TS: 1, Val: "v"}},
		ABDWriteAck{Seq: 1},
		ABDRead{Seq: 2},
		ABDReadAck{Seq: 2, C: types.Bottom()},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	for _, m := range validMessages() {
		if err := Validate(m); err != nil {
			t.Errorf("Validate(%v %+v) = %v, want nil", m.Kind(), m, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		m    Message
	}{
		{"nil message", nil},
		{"PW zero ts", PW{TS: 0, PW: types.Bottom(), W: types.Bottom()}},
		{"PW negative ts", PW{TS: -1, PW: types.Bottom(), W: types.Bottom()}},
		{"PW non-bottom value at ts0", PW{TS: 1, PW: types.Tagged{TS: 0, Val: "evil"}, W: types.Bottom()}},
		{"PW negative pair ts", PW{TS: 1, PW: types.Tagged{TS: -3, Val: "v"}, W: types.Bottom()}},
		{"PW frozen for non-reader", PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom(),
			Frozen: []types.FrozenEntry{{Reader: types.ServerID(0), PW: types.Tagged{TS: 1, Val: "v"}}}}},
		{"PW duplicate frozen reader", PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom(),
			Frozen: []types.FrozenEntry{
				{Reader: types.ReaderID(0), PW: types.Tagged{TS: 1, Val: "v"}},
				{Reader: types.ReaderID(0), PW: types.Tagged{TS: 1, Val: "v"}},
			}}},
		{"PW frozen bad pair", PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom(),
			Frozen: []types.FrozenEntry{{Reader: types.ReaderID(0), PW: types.Tagged{TS: 0, Val: "x"}}}}},
		{"PWAck zero ts", PWAck{TS: 0}},
		{"PWAck newread non-reader", PWAck{TS: 1, NewRead: []types.ReadStamp{{Reader: "w", TSR: 1}}}},
		{"W round 0", W{Round: 0, Tag: 1, C: types.Bottom()}},
		{"W round 4", W{Round: 4, Tag: 1, C: types.Bottom()}},
		{"W bad pair", W{Round: 1, Tag: 1, C: types.Tagged{TS: 0, Val: "x"}}},
		{"WAck round 0", WAck{Round: 0}},
		{"Read round 0", Read{TSR: 1, Round: 0}},
		{"Read zero tsr", Read{TSR: 0, Round: 1}},
		{"ReadAck round 0", ReadAck{Round: 0}},
		{"ReadAck bad pw", ReadAck{Round: 1, PW: types.Tagged{TS: -1, Val: "v"}}},
		{"ReadAck bad frozen", ReadAck{Round: 1, Frozen: types.FrozenPair{PW: types.Tagged{TS: 0, Val: "x"}}}},
		{"ABDWrite bad pair", ABDWrite{C: types.Tagged{TS: -1}}},
		{"ABDReadAck bad pair", ABDReadAck{C: types.Tagged{TS: 0, Val: "z"}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.m)
			if err == nil {
				t.Fatalf("Validate accepted malformed message %+v", tc.m)
			}
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("error %v does not wrap ErrMalformed", err)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindPW: "PW", KindPWAck: "PW_ACK", KindW: "W", KindWAck: "WRITE_ACK",
		KindRead: "READ", KindReadAck: "READ_ACK",
		KindABDWrite: "ABD_WRITE", KindABDWriteAck: "ABD_WRITE_ACK",
		KindABDRead: "ABD_READ", KindABDReadAck: "ABD_READ_ACK",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(0).String(); !strings.Contains(got, "invalid") {
		t.Errorf("Kind(0).String() = %q, want invalid marker", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, m := range validMessages() {
		env := Envelope{From: types.ServerID(1), To: types.ReaderID(0), Msg: m}
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, env); err != nil {
			t.Fatalf("EncodeFrame(%v): %v", m.Kind(), err)
		}
		got, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatalf("DecodeFrame(%v): %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", m.Kind(), got, env)
		}
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	msgs := validMessages()
	for _, m := range msgs {
		if err := EncodeFrame(&buf, Envelope{From: "w", To: "s0", Msg: m}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		env, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Msg.Kind() != msgs[i].Kind() {
			t.Errorf("frame %d kind = %v, want %v", i, env.Msg.Kind(), msgs[i].Kind())
		}
	}
	if _, err := DecodeFrame(&buf); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestDecodeFrameRejectsOversizedHeader(t *testing.T) {
	buf := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	_, err := DecodeFrame(buf)
	if !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized frame err = %v, want ErrMalformed", err)
	}
}

func TestDecodeFrameRejectsGarbageBody(t *testing.T) {
	body := []byte("this is not a frame")
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, byte(len(body))})
	buf.Write(body)
	if _, err := DecodeFrame(&buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("garbage body err = %v, want ErrMalformed", err)
	}
}

func TestDecodeFrameRejectsInvalidDecodedMessage(t *testing.T) {
	// A structurally decodable envelope whose message fails Validate:
	// round 0 W message.
	var buf bytes.Buffer
	env := Envelope{From: "w", To: "s0", Msg: W{Round: 2, Tag: 1, C: types.Bottom()}}
	if err := EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	// Mutating gob bytes reliably is brittle; instead encode an invalid
	// message directly through the encoder path used by a malicious peer.
	var evil bytes.Buffer
	if err := EncodeFrame(&evil, Envelope{From: "w", To: "s0", Msg: Read{TSR: 0, Round: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(&evil); !errors.Is(err, ErrMalformed) {
		t.Errorf("invalid message err = %v, want ErrMalformed", err)
	}
}

func TestDecodeFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, Envelope{From: "w", To: "s0", Msg: ABDRead{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	truncated := bytes.NewReader(whole[:len(whole)-2])
	if _, err := DecodeFrame(truncated); err == nil {
		t.Error("DecodeFrame accepted truncated frame")
	}
}

// Frames must round-trip for arbitrary value payloads, including binary
// data that is not valid UTF-8.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(ts uint32, val []byte, round uint8) bool {
		c := types.Tagged{TS: types.TS(ts%1000) + 1, Val: types.Value(val)}
		env := Envelope{
			From: types.WriterID(),
			To:   types.ServerID(int(round) % 7),
			Msg:  W{Round: int(round)%3 + 1, Tag: int64(ts), C: c},
		}
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, env); err != nil {
			return false
		}
		got, err := DecodeFrame(&buf)
		return err == nil && reflect.DeepEqual(got, env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
