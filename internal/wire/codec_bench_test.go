package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"testing"

	"luckystore/internal/types"
)

// benchEnvelopes are the workload shapes for the codec benchmarks:
// read is the fixed-size control message, readack the hot data-carrying
// ack, pw_frozen a write-path message with a small frozen set, and
// batch32 a coalesced 32-key round — the shape PRs 1–2 put on the wire.
func benchEnvelopes() []struct {
	name string
	env  Envelope
} {
	batch := Batch{Msgs: make([]Message, 32)}
	for i := range batch.Msgs {
		batch.Msgs[i] = Keyed{
			Key:   fmt.Sprintf("key-%02d", i),
			Inner: W{Round: 2, Tag: int64(i), C: types.Tagged{TS: types.TS(i + 1), Val: "payload-value"}},
		}
	}
	return []struct {
		name string
		env  Envelope
	}{
		{"read", Envelope{From: "r0", To: "s1", Msg: Read{TSR: 7, Round: 1}}},
		{"readack", Envelope{From: "s3", To: "r0", Msg: ReadAck{
			TSR: 7, Round: 1,
			PW: types.Tagged{TS: 9, Val: "payload-value"},
			W:  types.Tagged{TS: 8, Val: "older-value"},
			VW: types.Tagged{TS: 7, Val: "oldest"},
		}}},
		{"pw_frozen", Envelope{From: "w", To: "s0", Msg: PW{
			TS: 42, PW: types.Tagged{TS: 42, Val: "new-value"}, W: types.Tagged{TS: 41, Val: "old-value"},
			Frozen: []types.FrozenEntry{
				{Reader: types.ReaderID(0), PW: types.Tagged{TS: 41, Val: "old-value"}, TSR: 3},
				{Reader: types.ReaderID(1), PW: types.Tagged{TS: 41, Val: "old-value"}, TSR: 5},
			},
		}}},
		{"batch32", Envelope{From: "w", To: "s0", Msg: batch}},
	}
}

// BenchmarkEncodeFrame measures the binary codec's encode path; pair
// with BenchmarkEncodeFrameGob for the before/after table in
// EXPERIMENTS.md.
func BenchmarkEncodeFrame(b *testing.B) {
	for _, tc := range benchEnvelopes() {
		b.Run(tc.name, func(b *testing.B) {
			frame, err := AppendFrame(nil, tc.env)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := EncodeFrame(io.Discard, tc.env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeFrame measures the binary codec's decode path
// (including structural validation, as on the live read loop).
func BenchmarkDecodeFrame(b *testing.B) {
	for _, tc := range benchEnvelopes() {
		b.Run(tc.name, func(b *testing.B) {
			frame, err := AppendFrame(nil, tc.env)
			if err != nil {
				b.Fatal(err)
			}
			r := bytes.NewReader(frame)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(frame)
				if _, err := DecodeFrame(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- gob baseline ----------------------------------------------------
//
// The seed's codec, kept verbatim (test-only) so every benchmark run
// reproduces the before/after comparison instead of trusting numbers
// frozen in a document.

var registerGob = sync.OnceFunc(func() {
	gob.Register(PW{})
	gob.Register(PWAck{})
	gob.Register(W{})
	gob.Register(WAck{})
	gob.Register(Read{})
	gob.Register(ReadAck{})
	gob.Register(ABDWrite{})
	gob.Register(ABDWriteAck{})
	gob.Register(ABDRead{})
	gob.Register(ABDReadAck{})
	gob.Register(Keyed{})
	gob.Register(Batch{})
})

func gobEncodeFrame(w io.Writer, env Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return err
	}
	var hdr [4]byte
	hdr[0] = byte(buf.Len() >> 24)
	hdr[1] = byte(buf.Len() >> 16)
	hdr[2] = byte(buf.Len() >> 8)
	hdr[3] = byte(buf.Len())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func gobDecodeFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return Envelope{}, err
	}
	if err := Validate(env.Msg); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

func BenchmarkEncodeFrameGob(b *testing.B) {
	registerGob()
	for _, tc := range benchEnvelopes() {
		b.Run(tc.name, func(b *testing.B) {
			var sz bytes.Buffer
			if err := gobEncodeFrame(&sz, tc.env); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sz.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := gobEncodeFrame(io.Discard, tc.env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeFrameGob(b *testing.B) {
	registerGob()
	for _, tc := range benchEnvelopes() {
		b.Run(tc.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := gobEncodeFrame(&buf, tc.env); err != nil {
				b.Fatal(err)
			}
			frame := buf.Bytes()
			r := bytes.NewReader(frame)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(frame)
				if _, err := gobDecodeFrame(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendCoalesced measures the direct batch-encode path the
// Coalescer hands to tcpnet (one 32-key run into one frame) against
// the generic CoalesceKeyed + EncodeFrame walk it replaced.
func BenchmarkAppendCoalesced(b *testing.B) {
	msgs := make([]Message, 32)
	for i := range msgs {
		msgs[i] = Keyed{
			Key:   fmt.Sprintf("key-%02d", i),
			Inner: W{Round: 2, Tag: int64(i), C: types.Tagged{TS: types.TS(i + 1), Val: "payload-value"}},
		}
	}
	b.Run("direct", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendCoalesced(buf[:0], "w", "s0", msgs)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, m := range CoalesceKeyed(msgs) {
				if err := EncodeFrame(io.Discard, Envelope{From: "w", To: "s0", Msg: m}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
