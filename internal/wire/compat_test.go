package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"luckystore/internal/types"
)

// This file pins the v1 → v2 wire compatibility contract: frames
// emitted by a pre-MWMR (format v1) peer must decode on a current
// decoder, with every tagged value landing as writer 0 and PW_ACK.Max
// as the zero stamp — exactly the meaning those frames had when they
// were written.

// appendTaggedV1 encodes a tagged value in the v1 layout: timestamp
// varint + value string, no writer component.
func appendTaggedV1(buf []byte, c types.Tagged) []byte {
	buf = binary.AppendVarint(buf, int64(c.TS))
	return appendString(buf, string(c.Val))
}

// appendMessageV1 encodes the message kinds a v1 peer could send that
// carry tagged values (the kinds whose layout changed in v2), plus
// Read as a fixed-layout control.
func appendMessageV1(buf []byte, m Message) []byte {
	switch v := m.(type) {
	case PW:
		buf = append(buf, byte(KindPW))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = appendTaggedV1(buf, v.PW)
		buf = appendTaggedV1(buf, v.W)
		buf = binary.AppendUvarint(buf, uint64(len(v.Frozen)))
		for _, f := range v.Frozen {
			buf = appendString(buf, string(f.Reader))
			buf = appendTaggedV1(buf, f.PW)
			buf = binary.AppendVarint(buf, int64(f.TSR))
		}
		return buf
	case PWAck:
		buf = append(buf, byte(KindPWAck))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = binary.AppendUvarint(buf, uint64(len(v.NewRead)))
		for _, rs := range v.NewRead {
			buf = appendString(buf, string(rs.Reader))
			buf = binary.AppendVarint(buf, int64(rs.TSR))
		}
		return buf
	case W:
		buf = append(buf, byte(KindW))
		buf = binary.AppendVarint(buf, int64(v.Round))
		buf = binary.AppendVarint(buf, v.Tag)
		buf = appendTaggedV1(buf, v.C)
		return binary.AppendUvarint(buf, 0)
	case Read:
		buf = append(buf, byte(KindRead))
		buf = binary.AppendVarint(buf, int64(v.TSR))
		return binary.AppendVarint(buf, int64(v.Round))
	case ReadAck:
		buf = append(buf, byte(KindReadAck))
		buf = binary.AppendVarint(buf, int64(v.TSR))
		buf = binary.AppendVarint(buf, int64(v.Round))
		buf = appendTaggedV1(buf, v.PW)
		buf = appendTaggedV1(buf, v.W)
		buf = appendTaggedV1(buf, v.VW)
		buf = appendTaggedV1(buf, v.Frozen.PW)
		return binary.AppendVarint(buf, int64(v.Frozen.TSR))
	case Keyed:
		buf = append(buf, byte(KindKeyed))
		buf = appendString(buf, v.Key)
		return appendMessageV1(buf, v.Inner)
	default:
		panic("appendMessageV1: unsupported kind in test encoder")
	}
}

// frameV1 wraps a v1-encoded envelope in a framed stream: length
// prefix, version byte 1, from, to, message.
func frameV1(from, to types.ProcID, m Message) []byte {
	body := []byte{FormatVersionV1}
	body = appendString(body, string(from))
	body = appendString(body, string(to))
	body = appendMessageV1(body, m)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// v1Envelopes is the v1 interop corpus: every changed-layout kind, as a
// v1 peer would have sent it (writer components necessarily zero).
func v1Envelopes() []Envelope {
	mk := func(from, to types.ProcID, m Message) Envelope {
		return Envelope{From: from, To: to, Msg: m}
	}
	return []Envelope{
		mk("w", "s0", PW{TS: 7, PW: types.Tagged{TS: 7, Val: "v7"}, W: types.Tagged{TS: 6, Val: "v6"},
			Frozen: []types.FrozenEntry{{Reader: types.ReaderID(1), PW: types.Tagged{TS: 5, Val: "f"}, TSR: 2}}}),
		mk("s0", "w", PWAck{TS: 7, NewRead: []types.ReadStamp{{Reader: types.ReaderID(0), TSR: 3}}}),
		mk("w", "s1", W{Round: 2, Tag: 7, C: types.Tagged{TS: 7, Val: "v7"}}),
		mk("r0", "s2", Read{TSR: 4, Round: 1}),
		mk("s2", "r0", ReadAck{TSR: 4, Round: 1, PW: types.Tagged{TS: 7, Val: "v7"},
			W: types.Tagged{TS: 6, Val: "v6"}, VW: types.Tagged{TS: 6, Val: "v6"},
			Frozen: types.FrozenPair{PW: types.Bottom(), TSR: 0}}),
		mk("w", "s0", Keyed{Key: "users/42", Inner: W{Round: 3, Tag: 2, C: types.Tagged{TS: 2, Val: "x"}}}),
	}
}

// TestDecodeV1Frames: every v1 frame decodes on the current decoder to
// the envelope a v1 peer meant — writer components zero, Max zero.
func TestDecodeV1Frames(t *testing.T) {
	for _, want := range v1Envelopes() {
		raw := frameV1(want.From, want.To, want.Msg)
		got, err := DecodeFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("v1 frame %T failed to decode: %v", want.Msg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("v1 frame decoded to\n %+v\nwant\n %+v", got, want)
		}
		// And re-encoding it as v2 must round-trip to the same envelope.
		reenc, err := AppendFrame(nil, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeFrame(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Errorf("v1→v2 re-encode diverged:\n %+v\nwant\n %+v", again, want)
		}
	}
}

// TestDecodeEnvelopeVersionRejectsUnknown: only versions 1–3 are
// decodable; anything else must be refused up front.
func TestDecodeEnvelopeVersionRejectsUnknown(t *testing.T) {
	body, err := AppendEnvelope(nil, Envelope{From: "w", To: "s0", Msg: Read{TSR: 1, Round: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []byte{0, 4, 0xFF} {
		if _, err := DecodeEnvelopeVersion(v, body); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
	if _, err := DecodeEnvelopeVersion(FormatVersion, body); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
}

// TestV2CarriesWriterThroughTCPFraming: a full-stamp tagged value
// round-trips the framed codec with its writer component intact — the
// on-wire property the MWMR protocol depends on.
func TestV2CarriesWriterThroughTCPFraming(t *testing.T) {
	env := Envelope{From: types.WriterIDN(3), To: "s0", Msg: PW{
		TS: 9,
		PW: types.Tagged{TS: 9, W: 3, Val: "mw"},
		W:  types.Tagged{TS: 8, W: 1, Val: "prev"},
	}}
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("got %+v, want %+v", got, env)
	}
	if pw := got.Msg.(PW); pw.PW.Stamp() != (types.Stamp{Seq: 9, Writer: 3}) {
		t.Errorf("writer component lost: %v", pw.PW)
	}
}

// --- v2 ↔ v3 interop ------------------------------------------------
//
// Version 3 added the trailing spec flag on PW and the PW_NACK kind.
// Both directions are pinned: v2 frames (no spec byte, full stamps)
// must decode on a current decoder with Spec false, and a v3 encoding
// of a non-spec PW must be byte-identical to the v2 encoding plus the
// single trailing zero byte — which is what lets a v2 peer's decoder,
// were it lenient about trailing bytes, at worst reject (never
// misread) a v3 frame, and what keeps the layouts prefix-compatible.

// appendMessageV2 encodes the kinds whose layout changed in v3 exactly
// as a v2 peer would have sent them: full composite stamps, no spec
// byte, PW_ACK with Max.
func appendMessageV2(buf []byte, m Message) []byte {
	switch v := m.(type) {
	case PW:
		buf = append(buf, byte(KindPW))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = appendTagged(buf, v.PW)
		buf = appendTagged(buf, v.W)
		return appendFrozenSet(buf, v.Frozen)
	case PWAck:
		buf = append(buf, byte(KindPWAck))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = binary.AppendVarint(buf, int64(v.Max.Seq))
		buf = binary.AppendVarint(buf, int64(v.Max.Writer))
		buf = binary.AppendUvarint(buf, uint64(len(v.NewRead)))
		for _, rs := range v.NewRead {
			buf = appendString(buf, string(rs.Reader))
			buf = binary.AppendVarint(buf, int64(rs.TSR))
		}
		return buf
	case Keyed:
		buf = append(buf, byte(KindKeyed))
		buf = appendString(buf, v.Key)
		return appendMessageV2(buf, v.Inner)
	default:
		panic("appendMessageV2: unsupported kind in test encoder")
	}
}

// frameV2 wraps a v2-encoded envelope in a framed stream.
func frameV2(from, to types.ProcID, m Message) []byte {
	body := []byte{FormatVersionV2}
	body = appendString(body, string(from))
	body = appendString(body, string(to))
	body = appendMessageV2(body, m)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// v2Envelopes is the v2 interop corpus: the kinds whose layout v3
// touched, with non-zero writer components (the v2 novelty) throughout.
func v2Envelopes() []Envelope {
	mk := func(from, to types.ProcID, m Message) Envelope {
		return Envelope{From: from, To: to, Msg: m}
	}
	return []Envelope{
		mk(types.WriterIDN(2), "s0", PW{TS: 9, PW: types.Tagged{TS: 9, W: 2, Val: "v9"},
			W: types.Tagged{TS: 8, W: 1, Val: "v8"},
			Frozen: []types.FrozenEntry{{Reader: types.ReaderID(0),
				PW: types.Tagged{TS: 7, W: 2, Val: "f"}, TSR: 3}}}),
		mk("s0", types.WriterIDN(2), PWAck{TS: 9, Max: types.Stamp{Seq: 11, Writer: 1},
			NewRead: []types.ReadStamp{{Reader: types.ReaderID(1), TSR: 5}}}),
		mk(types.WriterIDN(1), "s2", Keyed{Key: "hot", Inner: PW{TS: 3,
			PW: types.Tagged{TS: 3, W: 1, Val: "k"}, W: types.Bottom()}}),
	}
}

// TestDecodeV2Frames: every v2 frame decodes on the current decoder to
// the envelope the v2 peer meant — Spec false, stamps intact — and
// re-encoding it as v3 round-trips.
func TestDecodeV2Frames(t *testing.T) {
	for _, want := range v2Envelopes() {
		raw := frameV2(want.From, want.To, want.Msg)
		got, err := DecodeFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("v2 frame %T failed to decode: %v", want.Msg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("v2 frame decoded to\n %+v\nwant\n %+v", got, want)
		}
		reenc, err := AppendFrame(nil, got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := DecodeFrame(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Errorf("v2→v3 re-encode diverged:\n %+v\nwant\n %+v", again, want)
		}
	}
}

// TestV3PWIsV2PlusSpecByte pins the prefix-compatibility that makes the
// two formats interoperable: the current encoding of a PW is the v2
// encoding with exactly one trailing flag byte.
func TestV3PWIsV2PlusSpecByte(t *testing.T) {
	m := PW{TS: 4, PW: types.Tagged{TS: 4, W: 3, Val: "x"}, W: types.Tagged{TS: 3, W: 1, Val: "y"}}
	v2 := appendMessageV2(nil, m)
	for _, spec := range []bool{false, true} {
		m.Spec = spec
		v3, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		flag := byte(0)
		if spec {
			flag = 1
		}
		want := append(append([]byte(nil), v2...), flag)
		if !bytes.Equal(v3, want) {
			t.Errorf("spec=%v: v3 encoding is not v2+flag:\n v3   %x\n want %x", spec, v3, want)
		}
	}
}

// TestPWNackRoundTripAndVersionGate: PW_NACK frames round-trip on the
// current codec, and the kind is refused inside pre-v3 frames — a v2
// body can never have legally carried it.
func TestPWNackRoundTripAndVersionGate(t *testing.T) {
	env := Envelope{From: "s1", To: types.WriterIDN(2),
		Msg: PWNack{TS: 9, Max: types.Stamp{Seq: 12, Writer: 1}}}
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("got %+v, want %+v", got, env)
	}

	body, err := AppendEnvelope(nil, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, ver := range []byte{FormatVersionV1, FormatVersionV2} {
		if _, err := DecodeEnvelopeVersion(ver, body); err == nil {
			t.Errorf("PW_NACK accepted inside a v%d frame", ver)
		}
	}
}
