package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"luckystore/internal/types"
)

func sampleBatch() Batch {
	return Batch{Msgs: []Message{
		Keyed{Key: "a", Inner: PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom()}},
		Keyed{Key: "b", Inner: Read{TSR: 1, Round: 1}},
		Keyed{Key: "a", Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: "v"}}},
	}}
}

func TestBatchValidateAccepts(t *testing.T) {
	if err := Validate(sampleBatch()); err != nil {
		t.Fatalf("Validate(batch) = %v, want nil", err)
	}
}

func TestBatchValidateRejects(t *testing.T) {
	huge := Batch{Msgs: make([]Message, MaxBatchEntries+1)}
	for i := range huge.Msgs {
		huge.Msgs[i] = Keyed{Key: "k", Inner: Read{TSR: 1, Round: 1}}
	}
	tests := []struct {
		name string
		m    Message
	}{
		{"empty batch", Batch{}},
		{"oversized batch", huge},
		{"unkeyed entry", Batch{Msgs: []Message{Read{TSR: 1, Round: 1}}}},
		{"nested batch entry", Batch{Msgs: []Message{sampleBatch()}}},
		{"batch smuggled inside keyed", Keyed{Key: "k", Inner: sampleBatch()}},
		{"batch inside keyed inside batch", Batch{Msgs: []Message{Keyed{Key: "k", Inner: sampleBatch()}}}},
		{"nil entry", Batch{Msgs: []Message{nil}}},
		{"malformed inner", Batch{Msgs: []Message{Keyed{Key: "k", Inner: Read{TSR: 0, Round: 1}}}}},
		{"empty inner key", Batch{Msgs: []Message{Keyed{Key: "", Inner: Read{TSR: 1, Round: 1}}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.m)
			if err == nil {
				t.Fatalf("Validate accepted malformed batch %+v", tc.m)
			}
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("error %v does not wrap ErrMalformed", err)
			}
		})
	}
}

func TestBatchKindString(t *testing.T) {
	if got := KindBatch.String(); got != "BATCH" {
		t.Errorf("KindBatch.String() = %q, want BATCH", got)
	}
}

func TestBatchFrameRoundTrip(t *testing.T) {
	env := Envelope{From: types.WriterID(), To: types.ServerID(0), Msg: sampleBatch()}
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, env); err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := DecodeFrame(&buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, env)
	}
}

func TestExpandSplitsBatch(t *testing.T) {
	b := sampleBatch()
	env := Envelope{From: types.WriterID(), To: types.ServerID(2), Msg: b}
	got := Expand(env)
	if len(got) != len(b.Msgs) {
		t.Fatalf("Expand returned %d envelopes, want %d", len(got), len(b.Msgs))
	}
	for i, e := range got {
		if e.From != env.From || e.To != env.To {
			t.Errorf("envelope %d stamps = %s→%s, want %s→%s", i, e.From, e.To, env.From, env.To)
		}
		if !reflect.DeepEqual(e.Msg, b.Msgs[i]) {
			t.Errorf("envelope %d msg = %+v, want %+v", i, e.Msg, b.Msgs[i])
		}
	}
}

func TestCoalesceKeyedBatchesRunsAndPassesThroughRest(t *testing.T) {
	msgs := []Message{
		Keyed{Key: "a", Inner: Read{TSR: 1, Round: 1}},
		Keyed{Key: "b", Inner: Read{TSR: 2, Round: 1}},
		ABDRead{Seq: 1}, // breaks the run
		Keyed{Key: "c", Inner: Read{TSR: 3, Round: 1}},
	}
	out := CoalesceKeyed(msgs)
	if len(out) != 3 {
		t.Fatalf("CoalesceKeyed emitted %d frames, want 3: %+v", len(out), out)
	}
	b, ok := out[0].(Batch)
	if !ok || len(b.Msgs) != 2 {
		t.Errorf("frame 0 = %+v, want batch of 2", out[0])
	}
	if _, ok := out[1].(ABDRead); !ok {
		t.Errorf("frame 1 = %T, want pass-through ABDRead", out[1])
	}
	if _, ok := out[2].(Keyed); !ok {
		t.Errorf("frame 2 = %T, want lone Keyed unbatched", out[2])
	}
	for _, m := range out {
		if err := Validate(m); err != nil {
			t.Errorf("emitted frame invalid: %v", err)
		}
	}
}

// TestCoalesceKeyedRespectsByteBudget queues values big enough that one
// batch would blow the frame cap: the run must split so every emitted
// frame encodes under the limit.
func TestCoalesceKeyedRespectsByteBudget(t *testing.T) {
	big := types.Value(string(make([]byte, 3<<20))) // 3 MiB per value
	var msgs []Message
	for i := 0; i < 10; i++ { // 30 MiB total — far over the 16 MiB cap
		msgs = append(msgs, Keyed{Key: fmt.Sprintf("k%d", i),
			Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: big}}})
	}
	out := CoalesceKeyed(msgs)
	if len(out) < 2 {
		t.Fatalf("30 MiB of values coalesced into %d frame(s)", len(out))
	}
	total := 0
	for i, m := range out {
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, Envelope{From: types.WriterID(), To: types.ServerID(0), Msg: m}); err != nil {
			t.Fatalf("frame %d does not encode: %v", i, err)
		}
		if b, ok := m.(Batch); ok {
			total += len(b.Msgs)
		} else {
			total++
		}
	}
	if total != len(msgs) {
		t.Errorf("frames carry %d messages, want %d", total, len(msgs))
	}
}

// TestCoalesceKeyedRespectsEntryBudget checks a run longer than the
// per-batch entry budget splits into multiple valid batches.
func TestCoalesceKeyedRespectsEntryBudget(t *testing.T) {
	n := MaxBatchEntries/2 + 10
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Keyed{Key: "k", Inner: Read{TSR: 1, Round: 1}}
	}
	out := CoalesceKeyed(msgs)
	if len(out) < 2 {
		t.Fatalf("%d messages coalesced into %d frame(s)", n, len(out))
	}
	total := 0
	for _, m := range out {
		if err := Validate(m); err != nil {
			t.Fatalf("emitted frame invalid: %v", err)
		}
		if b, ok := m.(Batch); ok {
			total += len(b.Msgs)
		} else {
			total++
		}
	}
	if total != n {
		t.Errorf("frames carry %d messages, want %d", total, n)
	}
}

func TestExpandPassesThroughNonBatch(t *testing.T) {
	env := Envelope{From: types.ServerID(0), To: types.WriterID(), Msg: PWAck{TS: 1}}
	got := Expand(env)
	if len(got) != 1 || !reflect.DeepEqual(got[0], env) {
		t.Errorf("Expand(non-batch) = %+v, want [%+v]", got, env)
	}
}
