package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"luckystore/internal/types"
)

// DecodeFrame must never panic and must return an error (or io.EOF) on
// arbitrary byte streams — a Byzantine peer controls every byte after
// the TCP handshake.
func TestDecodeFrameNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		_, err := DecodeFrame(bytes.NewReader(raw))
		// Any outcome but a panic is acceptable; an empty stream is
		// io.EOF, everything else must error (raw random bytes cannot
		// be a valid envelope of meaningful size).
		return err != nil || len(raw) > 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Flipping any single byte of a valid frame must not produce a decoded
// envelope that panics downstream; it either still decodes to a
// Validate-checked message or errors.
func TestDecodeFrameBitFlips(t *testing.T) {
	env := Envelope{
		From: types.ServerID(2), To: types.ReaderID(0),
		Msg: ReadAck{TSR: 5, Round: 2,
			PW: types.Tagged{TS: 9, Val: "value-nine"},
			W:  types.Tagged{TS: 8, Val: "value-eight"},
			VW: types.Tagged{TS: 7, Val: "value-seven"},
		},
	}
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		corrupted := make([]byte, len(valid))
		copy(corrupted, valid)
		i := rng.Intn(len(corrupted))
		corrupted[i] ^= byte(1 << rng.Intn(8))
		got, err := DecodeFrame(bytes.NewReader(corrupted))
		if err != nil {
			continue
		}
		// If it decoded, the message must satisfy Validate (DecodeFrame
		// guarantees this contract).
		if verr := Validate(got.Msg); verr != nil {
			t.Fatalf("flip at byte %d: decoded envelope fails Validate: %v", i, verr)
		}
	}
}

// A frame header promising more bytes than the stream holds must error
// without blocking or huge allocation.
func TestDecodeFrameShortStreamPerHeader(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1024)
	buf.Write(hdr[:])
	buf.WriteString("only a few bytes")
	if _, err := DecodeFrame(&buf); err == nil {
		t.Fatal("short stream decoded")
	}
}

// Concatenated valid frames followed by garbage decode up to the
// garbage and then error.
func TestDecodeFrameStopsAtGarbage(t *testing.T) {
	var buf bytes.Buffer
	for i := 1; i <= 3; i++ {
		env := Envelope{From: types.WriterID(), To: types.ServerID(0),
			Msg: Read{TSR: types.ReaderTS(i), Round: 1}}
		if err := EncodeFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	for i := 1; i <= 3; i++ {
		env, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := env.Msg.(Read).TSR; got != types.ReaderTS(i) {
			t.Fatalf("frame %d out of order: %d", i, got)
		}
	}
	if _, err := DecodeFrame(&buf); err == nil || err == io.EOF {
		t.Fatalf("garbage tail: err = %v, want decode error", err)
	}
}
