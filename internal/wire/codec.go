package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sync"

	"luckystore/internal/types"
)

// Envelope is the unit transferred by every network implementation: a
// message together with its (claimed) sender and intended receiver. On
// the in-memory network the From field is trustworthy; on TCP it is
// authenticated only by the connection it arrived on (the accepting
// side overwrites it with the peer's registered identity).
type Envelope struct {
	From types.ProcID
	To   types.ProcID
	Msg  Message
}

// maxFrameSize bounds a single encoded envelope (16 MiB). Frames above
// the limit are rejected before allocation, so a malicious peer cannot
// force an arbitrary-size allocation with a forged length prefix.
const maxFrameSize = 16 << 20

// frameReadChunk bounds how much DecodeFrame's body buffer grows ahead
// of bytes actually arriving. A hostile peer can claim a 16 MiB frame
// in the length prefix and then stall; reading through chunks of this
// size means such a connection pins at most one chunk, not the whole
// claimed frame.
const frameReadChunk = 64 << 10

// maxPooledBuf caps the capacity of scratch buffers returned to the
// frame pool; occasional giant frames should not turn the pool into a
// permanent reservation of per-connection megabytes.
const maxPooledBuf = 1 << 20

// framePool holds codec scratch buffers: EncodeFrame builds each frame
// in one, DecodeFrame reads each body through one. In steady state the
// encode/decode paths therefore allocate nothing for framing.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		framePool.Put(bp)
	}
}

// Expand flattens a batched envelope into one envelope per inner
// message, preserving send order and the From/To stamps; a non-batch
// envelope expands to itself. Transports call it at the endpoint
// boundary so everything above them sees only unbatched traffic.
func Expand(env Envelope) []Envelope {
	b, ok := env.Msg.(Batch)
	if !ok {
		return []Envelope{env}
	}
	out := make([]Envelope, len(b.Msgs))
	for i, m := range b.Msgs {
		out[i] = Envelope{From: env.From, To: env.To, Msg: m}
	}
	return out
}

// EncodeFrame serializes an envelope in the binary wire format — 4-byte
// big-endian length prefix, format version byte, envelope — building
// the frame in a pooled scratch buffer and handing header and body to
// the writer as a single Write call (the seed's gob codec issued two
// unbuffered writes per frame).
func EncodeFrame(w io.Writer, env Envelope) error {
	bp := getFrameBuf()
	buf, err := AppendFrame((*bp)[:0], env)
	if err != nil {
		*bp = buf
		putFrameBuf(bp)
		return err
	}
	_, werr := w.Write(buf)
	*bp = buf
	putFrameBuf(bp)
	if werr != nil {
		return fmt.Errorf("write frame: %w", werr)
	}
	return nil
}

// DecodeFrame reads one length-prefixed envelope from r. It returns
// io.EOF unchanged on a clean end of stream, and validates the decoded
// message structurally before returning it. The body is read through a
// pooled scratch buffer that grows only as bytes arrive (frameReadChunk
// at a time), so a forged length prefix cannot pin megabytes per
// connection.
func DecodeFrame(r io.Reader) (Envelope, error) {
	// The header is read through the pooled buffer too: a stack array
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame.
	bp := getFrameBuf()
	hdr := grow((*bp)[:0], 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		*bp = hdr
		putFrameBuf(bp)
		if err == io.EOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("read frame header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > maxFrameSize {
		*bp = hdr
		putFrameBuf(bp)
		return Envelope{}, fmt.Errorf("%w: frame size %d exceeds limit %d", ErrMalformed, n, maxFrameSize)
	}
	if n < 2 { // version byte + at least an empty envelope's length bytes
		*bp = hdr
		putFrameBuf(bp)
		return Envelope{}, fmt.Errorf("%w: frame size %d too small", ErrMalformed, n)
	}
	buf := hdr[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameReadChunk {
			chunk = frameReadChunk
		}
		start := len(buf)
		buf = grow(buf, start+chunk)
		if _, err := io.ReadFull(r, buf[start:start+chunk]); err != nil {
			*bp = buf
			putFrameBuf(bp)
			return Envelope{}, fmt.Errorf("read frame body: %w", err)
		}
		// The version byte arrives with the first chunk; checking it
		// here rejects an unsupported-version frame before its (up to
		// 16 MiB) body is transferred and buffered. v1 and v2 frames
		// (pre-MWMR / pre-speculation peers) still decode.
		if start == 0 && buf[0] != FormatVersion && buf[0] != FormatVersionV2 && buf[0] != FormatVersionV1 {
			v := buf[0]
			*bp = buf
			putFrameBuf(bp)
			return Envelope{}, fmt.Errorf("%w: unsupported wire format version %d (want %d..%d)", ErrMalformed, v, FormatVersionV1, FormatVersion)
		}
	}
	env, err := DecodeEnvelopeVersion(buf[0], buf[1:])
	*bp = buf
	putFrameBuf(bp)
	if err != nil {
		return Envelope{}, err
	}
	if err := Validate(env.Msg); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// grow extends buf to length n, reallocating amortized so chunked
// frame reads stay cheap.
func grow(buf []byte, n int) []byte {
	return slices.Grow(buf, n-len(buf))[:n]
}
