package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"luckystore/internal/types"
)

// Envelope is the unit transferred by every network implementation: a
// message together with its (claimed) sender and intended receiver. On
// the in-memory network the From field is trustworthy; on TCP it is
// authenticated only by the connection it arrived on (the accepting
// side overwrites it with the peer's registered identity).
type Envelope struct {
	From types.ProcID
	To   types.ProcID
	Msg  Message
}

// maxFrameSize bounds a single encoded envelope (16 MiB). Frames above
// the limit are rejected before allocation, so a malicious peer cannot
// force an arbitrary-size allocation with a forged length prefix.
const maxFrameSize = 16 << 20

// init registers the concrete message types with gob so they can travel
// inside the Message interface field of Envelope. Registration is the
// one legitimate use of init for gob-based codecs: it must happen before
// any encode/decode and has no observable side effects beyond the gob
// type registry.
func init() {
	gob.Register(PW{})
	gob.Register(PWAck{})
	gob.Register(W{})
	gob.Register(WAck{})
	gob.Register(Read{})
	gob.Register(ReadAck{})
	gob.Register(ABDWrite{})
	gob.Register(ABDWriteAck{})
	gob.Register(ABDRead{})
	gob.Register(ABDReadAck{})
	gob.Register(Keyed{})
	gob.Register(Batch{})
}

// Expand flattens a batched envelope into one envelope per inner
// message, preserving send order and the From/To stamps; a non-batch
// envelope expands to itself. Transports call it at the endpoint
// boundary so everything above them sees only unbatched traffic.
func Expand(env Envelope) []Envelope {
	b, ok := env.Msg.(Batch)
	if !ok {
		return []Envelope{env}
	}
	out := make([]Envelope, len(b.Msgs))
	for i, m := range b.Msgs {
		out[i] = Envelope{From: env.From, To: env.To, Msg: m}
	}
	return out
}

// EncodeFrame serializes an envelope as a 4-byte big-endian length
// prefix followed by the gob encoding.
func EncodeFrame(w io.Writer, env Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return fmt.Errorf("encode envelope: %w", err)
	}
	if buf.Len() > maxFrameSize {
		return fmt.Errorf("encode envelope: frame size %d exceeds limit %d", buf.Len(), maxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// DecodeFrame reads one length-prefixed envelope from r. It returns
// io.EOF unchanged on a clean end of stream, and validates the decoded
// message structurally before returning it.
func DecodeFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return Envelope{}, fmt.Errorf("%w: frame size %d exceeds limit %d", ErrMalformed, n, maxFrameSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, fmt.Errorf("read frame body: %w", err)
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("%w: decode envelope: %v", ErrMalformed, err)
	}
	if err := Validate(env.Msg); err != nil {
		return Envelope{}, err
	}
	return env, nil
}
