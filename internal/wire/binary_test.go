package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"luckystore/internal/types"
)

// interopEnvelopes is the cross-version interop corpus: one entry per
// message kind plus the documented edge cases — empty and maximum-size
// frozen sets, maximum-length keys, nested batch-of-keyed, binary and
// empty values. Every entry must survive encode→decode deeply equal;
// together they pin the wire format against accidental change.
func interopEnvelopes() []struct {
	name string
	env  Envelope
} {
	maxFrozen := make([]types.FrozenEntry, maxFrozenEntries)
	for i := range maxFrozen {
		maxFrozen[i] = types.FrozenEntry{
			Reader: types.ReaderID(i),
			PW:     types.Tagged{TS: types.TS(i + 1), Val: "fv"},
			TSR:    types.ReaderTS(i),
		}
	}
	maxKey := strings.Repeat("k", MaxKeyLen)
	bigBatch := Batch{Msgs: make([]Message, 1000)}
	for i := range bigBatch.Msgs {
		bigBatch.Msgs[i] = Keyed{
			Key:   fmt.Sprintf("key-%03d", i),
			Inner: W{Round: 2, Tag: int64(i), C: types.Tagged{TS: types.TS(i + 1), Val: types.Value(fmt.Sprintf("val-%03d", i))}},
		}
	}
	env := func(name string, m Message) struct {
		name string
		env  Envelope
	} {
		return struct {
			name string
			env  Envelope
		}{name, Envelope{From: types.WriterID(), To: types.ServerID(3), Msg: m}}
	}
	return []struct {
		name string
		env  Envelope
	}{
		env("pw_empty_frozen", PW{TS: 7, PW: types.Tagged{TS: 7, Val: "v7"}, W: types.Tagged{TS: 6, Val: "v6"}}),
		env("pw_max_frozen", PW{TS: 9, PW: types.Tagged{TS: 9, Val: "v"}, W: types.Bottom(), Frozen: maxFrozen}),
		env("pwack", PWAck{TS: 3, NewRead: []types.ReadStamp{
			{Reader: types.ReaderID(0), TSR: 5},
			{Reader: types.ReaderID(200), TSR: 6}, // outside the intern table
		}}),
		env("pwack_empty", PWAck{TS: 1}),
		env("pw_mw", PW{TS: 7, PW: types.Tagged{TS: 7, W: 2, Val: "v7"},
			W: types.Tagged{TS: 7, W: 1, Val: "v6"}}),
		env("pwack_max", PWAck{TS: 3, Max: types.Stamp{Seq: 9, Writer: 4}}),
		env("pw_spec", PW{TS: 8, PW: types.Tagged{TS: 8, W: 2, Val: "spec"},
			W: types.Tagged{TS: 7, W: 2, Val: "prev"}, Spec: true}),
		env("pwnack", PWNack{TS: 8, Max: types.Stamp{Seq: 10, Writer: 1}}),
		env("readack_mw", ReadAck{TSR: 2, Round: 2,
			PW: types.Tagged{TS: 5, W: 3, Val: "pw"}, W: types.Tagged{TS: 5, W: 1, Val: "w"},
			VW:     types.Tagged{TS: 4, W: 2, Val: "vw"},
			Frozen: types.FrozenPair{PW: types.Tagged{TS: 3, W: 1, Val: "fz"}, TSR: 2}}),
		env("w_frozen", W{Round: 3, Tag: -4, C: types.Tagged{TS: 4, Val: types.Value([]byte{0, 1, 0xFF, 0xFE})},
			Frozen: []types.FrozenEntry{{Reader: types.ReaderID(1), PW: types.Tagged{TS: 4, Val: "f"}, TSR: 2}}}),
		env("wack", WAck{Round: 1, Tag: 1 << 60}),
		env("read", Read{TSR: 12, Round: 4}),
		env("readack", ReadAck{TSR: 12, Round: 2,
			PW: types.Tagged{TS: 11, Val: "pw-val"}, W: types.Tagged{TS: 10, Val: "w-val"},
			VW: types.Tagged{TS: 9, Val: ""}, Frozen: types.FrozenPair{PW: types.Tagged{TS: 8, Val: "fz"}, TSR: 12}}),
		env("readack_bottom", ReadAck{TSR: 1, Round: 1, PW: types.Bottom(), W: types.Bottom(),
			VW: types.Bottom(), Frozen: types.InitialFrozen()}),
		env("abdwrite", ABDWrite{Seq: -9, C: types.Tagged{TS: 2, Val: "abd"}}),
		env("abdwriteack", ABDWriteAck{Seq: 1 << 40}),
		env("abdread", ABDRead{Seq: 0}),
		env("abdreadack", ABDReadAck{Seq: 77, C: types.Tagged{TS: 1, Val: types.Value(strings.Repeat("x", 4096))}}),
		env("keyed", Keyed{Key: "users/42", Inner: Read{TSR: 1, Round: 1}}),
		env("keyed_max_key", Keyed{Key: maxKey, Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: "v"}}}),
		env("batch_of_keyed", sampleBatch()),
		env("batch_1000", bigBatch),
		env("batch_single", Batch{Msgs: []Message{Keyed{Key: "solo", Inner: Read{TSR: 2, Round: 1}}}}),
	}
}

// TestBinaryRoundTripAllKinds is the interop table: every message kind
// (and its edge cases) must decode to a deeply-equal envelope.
func TestBinaryRoundTripAllKinds(t *testing.T) {
	for _, tc := range interopEnvelopes() {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeFrame(&buf, tc.env); err != nil {
				t.Fatalf("EncodeFrame: %v", err)
			}
			got, err := DecodeFrame(&buf)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if !reflect.DeepEqual(got, tc.env) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tc.env)
			}
			// The append-based API must agree with the streaming one.
			frame, err := AppendFrame(nil, tc.env)
			if err != nil {
				t.Fatalf("AppendFrame: %v", err)
			}
			got2, err := DecodeFrame(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("DecodeFrame(AppendFrame bytes): %v", err)
			}
			if !reflect.DeepEqual(got2, tc.env) {
				t.Errorf("AppendFrame round trip mismatch")
			}
		})
	}
}

// TestDecodeFrameRejectsUnknownVersion pins the versioning contract: a
// frame carrying any format version byte but the current one is
// rejected with ErrMalformed, so a future format bump can never be
// silently misread.
func TestDecodeFrameRejectsUnknownVersion(t *testing.T) {
	frame, err := AppendFrame(nil, Envelope{From: "w", To: "s0", Msg: Read{TSR: 1, Round: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []byte{0, FormatVersion + 1, 0x7F, 0xFF} {
		bad := append([]byte(nil), frame...)
		bad[4] = v // the version byte follows the 4-byte length prefix
		_, derr := DecodeFrame(bytes.NewReader(bad))
		if !errors.Is(derr, ErrMalformed) {
			t.Errorf("version %d: err = %v, want ErrMalformed", v, derr)
		}
	}
}

// TestDecodeFrameRejectsBadVersionBeforeBody: an unsupported version
// must be rejected as soon as the first chunk arrives, not after the
// claimed body (up to 16 MiB) has been transferred. The reader below
// counts bytes served; a correct decoder stops within one read chunk.
func TestDecodeFrameRejectsBadVersionBeforeBody(t *testing.T) {
	const claimed = 8 << 20
	frame := binary.BigEndian.AppendUint32(nil, claimed)
	frame = append(frame, FormatVersion+1)
	frame = append(frame, make([]byte, claimed-1)...)
	cr := &countingReader{r: bytes.NewReader(frame)}
	if _, err := DecodeFrame(cr); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if cr.n > 4+frameReadChunk {
		t.Errorf("decoder read %d bytes of a bad-version frame, want ≤ header + one chunk (%d)", cr.n, 4+frameReadChunk)
	}
}

type countingReader struct {
	r *bytes.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestAppendEnvelopeRejectsOversizedIdentity: the encoder enforces the
// same identity cap as the decoder, so it can never emit a frame a
// compliant peer refuses.
func TestAppendEnvelopeRejectsOversizedIdentity(t *testing.T) {
	long := types.ProcID(strings.Repeat("x", maxWireIDLen+1))
	msg := Read{TSR: 1, Round: 1}
	if _, err := AppendEnvelope(nil, Envelope{From: long, To: "s0", Msg: msg}); err == nil {
		t.Error("oversized From accepted")
	}
	if _, err := AppendFrame(nil, Envelope{From: "w", To: long, Msg: msg}); err == nil {
		t.Error("oversized To accepted")
	}
	if _, err := AppendCoalesced(nil, long, "s0", []Message{Keyed{Key: "k", Inner: msg}}); err == nil {
		t.Error("AppendCoalesced accepted oversized from")
	}
}

// TestDecodeMessageRejectsForgedNesting hand-crafts byte sequences no
// correct encoder emits: keyed inside keyed, batch inside keyed, batch
// inside batch, unknown kinds, truncations. All must fail cleanly with
// ErrMalformed.
func TestDecodeMessageRejectsForgedNesting(t *testing.T) {
	key := func(buf []byte) []byte { // keyed header with key "k"
		buf = append(buf, byte(KindKeyed))
		buf = binary.AppendUvarint(buf, 1)
		return append(buf, 'k')
	}
	read := func(buf []byte) []byte { // valid Read{TSR:1, Round:1}
		buf = append(buf, byte(KindRead))
		buf = binary.AppendVarint(buf, 1)
		return binary.AppendVarint(buf, 1)
	}
	tests := []struct {
		name string
		b    []byte
	}{
		{"keyed in keyed", read(key(key(nil)))},
		{"batch in keyed", append(key(nil), byte(KindBatch))},
		{"batch in batch", []byte{byte(KindBatch), byte(KindBatch)}},
		{"unkeyed in batch", read([]byte{byte(KindBatch)})},
		{"unknown kind", []byte{0x7F}},
		{"zero kind", []byte{0x00}},
		{"empty input", nil},
		{"empty batch", []byte{byte(KindBatch)}},
		{"truncated keyed", key(nil)},
		{"truncated read", []byte{byte(KindRead)}},
		{"key length past end", []byte{byte(KindKeyed), 200}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeMessage(tc.b)
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

// TestDecodeEnvelopeRejectsTrailingBytes: a frame must be consumed
// exactly; trailing garbage after a complete message is forged.
func TestDecodeEnvelopeRejectsTrailingBytes(t *testing.T) {
	body, err := AppendEnvelope(nil, Envelope{From: "w", To: "s0", Msg: Read{TSR: 1, Round: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(append(body, 0xAA)); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing byte: err = %v, want ErrMalformed", err)
	}
}

// TestDecodeFrameRejectsOverlongBatch crafts a frame holding more
// entries than MaxBatchEntries; the decoder must reject it rather than
// build an enormous slice.
func TestDecodeFrameRejectsOverlongBatch(t *testing.T) {
	body := []byte{FormatVersion}
	body = appendString(body, "w")
	body = appendString(body, "s0")
	body = append(body, byte(KindBatch))
	entry := func(buf []byte) []byte {
		buf = append(buf, byte(KindKeyed))
		buf = binary.AppendUvarint(buf, 1)
		buf = append(buf, 'k')
		buf = append(buf, byte(KindRead))
		buf = binary.AppendVarint(buf, 1)
		return binary.AppendVarint(buf, 1)
	}
	for i := 0; i < MaxBatchEntries+1; i++ {
		body = entry(body)
	}
	var frame []byte
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	_, err := DecodeFrame(bytes.NewReader(frame))
	if !errors.Is(err, ErrMalformed) {
		t.Errorf("overlong batch: err = %v, want ErrMalformed", err)
	}
}

// TestDecodeFrameForgedCountsDontOverallocate sends frames whose set
// counts promise far more entries than the body holds. They must fail
// as malformed — quickly, and without the decoder allocating anything
// near what the counts claim (exercised implicitly: a 64 Ki-entry
// allocation per call would make this test conspicuously slow and
// OOM-prone under -race).
func TestDecodeFrameForgedCountsDontOverallocate(t *testing.T) {
	for name, build := range map[string]func() []byte{
		"frozen": func() []byte {
			body := []byte{FormatVersion}
			body = appendString(body, "w")
			body = appendString(body, "s0")
			body = append(body, byte(KindPW))
			body = binary.AppendVarint(body, 1)
			body = appendTagged(body, types.Tagged{TS: 1, Val: "v"})
			body = appendTagged(body, types.Bottom())
			return binary.AppendUvarint(body, maxFrozenEntries) // ...and no entries follow
		},
		"newread": func() []byte {
			body := []byte{FormatVersion}
			body = appendString(body, "s0")
			body = appendString(body, "w")
			body = append(body, byte(KindPWAck))
			body = binary.AppendVarint(body, 1)
			return binary.AppendUvarint(body, maxFrozenEntries)
		},
	} {
		t.Run(name, func(t *testing.T) {
			body := build()
			var frame []byte
			frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
			frame = append(frame, body...)
			for i := 0; i < 1000; i++ {
				if _, err := DecodeFrame(bytes.NewReader(frame)); !errors.Is(err, ErrMalformed) {
					t.Fatalf("forged count: err = %v, want ErrMalformed", err)
				}
			}
		})
	}
}

// TestAppendCoalescedMatchesCoalesceKeyed: the direct-encode path must
// put exactly the frames on the wire that the generic CoalesceKeyed +
// EncodeFrame path would — same splits, same order, same bytes.
func TestAppendCoalescedMatchesCoalesceKeyed(t *testing.T) {
	big := types.Value(strings.Repeat("B", 3<<20))
	cases := map[string][]Message{
		"empty": nil,
		"single keyed": {
			Keyed{Key: "a", Inner: Read{TSR: 1, Round: 1}},
		},
		"run and break": {
			Keyed{Key: "a", Inner: Read{TSR: 1, Round: 1}},
			Keyed{Key: "b", Inner: W{Round: 2, Tag: 3, C: types.Tagged{TS: 3, Val: "x"}}},
			ABDRead{Seq: 7},
			Keyed{Key: "c", Inner: Read{TSR: 2, Round: 1}},
			Keyed{Key: "d", Inner: Read{TSR: 3, Round: 1}},
		},
		"only unkeyed": {
			ABDWrite{Seq: 1, C: types.Tagged{TS: 1, Val: "v"}},
			ABDRead{Seq: 2},
		},
		"byte budget split": {
			Keyed{Key: "k0", Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: big}}},
			Keyed{Key: "k1", Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: big}}},
			Keyed{Key: "k2", Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: big}}},
			Keyed{Key: "k3", Inner: W{Round: 2, Tag: 1, C: types.Tagged{TS: 1, Val: big}}},
		},
		// approxSize over-estimates mid-size messages (~283 estimated vs
		// ~170 encoded here), so the estimate-sum crosses the byte budget
		// thousands of entries before the actual bytes would. Both paths
		// must split at the same entry anyway — the direct path follows
		// CoalesceKeyed's accounting, not its own byte count.
		"estimate-vs-actual split": func() []Message {
			val := types.Value(strings.Repeat("m", 150))
			msgs := make([]Message, 32000)
			for i := range msgs {
				msgs[i] = Keyed{Key: "k", Inner: W{Round: 2, Tag: int64(i), C: types.Tagged{TS: 1, Val: val}}}
			}
			return msgs
		}(),
	}
	from, to := types.WriterID(), types.ServerID(0)
	for name, msgs := range cases {
		t.Run(name, func(t *testing.T) {
			direct, err := AppendCoalesced(nil, from, to, msgs)
			if err != nil {
				t.Fatalf("AppendCoalesced: %v", err)
			}
			var generic bytes.Buffer
			for _, m := range CoalesceKeyed(msgs) {
				if err := EncodeFrame(&generic, Envelope{From: from, To: to, Msg: m}); err != nil {
					t.Fatalf("EncodeFrame: %v", err)
				}
			}
			if !bytes.Equal(direct, generic.Bytes()) {
				t.Fatalf("direct path emitted %d bytes, generic %d — frame streams differ",
					len(direct), generic.Len())
			}
			// And everything must decode back to the original sequence.
			var decoded []Message
			r := bytes.NewReader(direct)
			for {
				env, err := DecodeFrame(r)
				if err != nil {
					break
				}
				for _, e := range Expand(env) {
					decoded = append(decoded, e.Msg)
				}
			}
			if len(decoded) != len(msgs) {
				t.Fatalf("decoded %d messages, want %d", len(decoded), len(msgs))
			}
			for i := range msgs {
				if !reflect.DeepEqual(decoded[i], msgs[i]) {
					t.Errorf("message %d: got %+v, want %+v", i, decoded[i], msgs[i])
				}
			}
		})
	}
}

// TestAppendCoalescedLongIdentities: the single-entry batch collapse
// must locate the KindBatch byte via its recorded offset, not by
// assuming 1-byte string length prefixes — identities of 128–255 bytes
// take 2-byte uvarint lengths and are legal at the wire layer.
func TestAppendCoalescedLongIdentities(t *testing.T) {
	from := types.ProcID(strings.Repeat("f", 200))
	to := types.ProcID(strings.Repeat("t", 131))
	msgs := []Message{Keyed{Key: "solo", Inner: Read{TSR: 3, Round: 1}}}
	direct, err := AppendCoalesced(nil, from, to, msgs)
	if err != nil {
		t.Fatalf("AppendCoalesced: %v", err)
	}
	var generic bytes.Buffer
	for _, m := range CoalesceKeyed(msgs) {
		if err := EncodeFrame(&generic, Envelope{From: from, To: to, Msg: m}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(direct, generic.Bytes()) {
		t.Fatal("single-entry collapse corrupted a frame with long identities")
	}
	env, err := DecodeFrame(bytes.NewReader(direct))
	if err != nil {
		t.Fatalf("collapsed frame does not decode: %v", err)
	}
	if env.From != from || env.To != to || !reflect.DeepEqual(env.Msg, msgs[0]) {
		t.Errorf("collapsed frame decoded to %+v", env)
	}
}

// TestAppendCoalescedDropsUnencodable: a message that cannot encode is
// skipped (first error reported) without corrupting neighboring frames.
func TestAppendCoalescedDropsUnencodable(t *testing.T) {
	msgs := []Message{
		Keyed{Key: "a", Inner: Read{TSR: 1, Round: 1}},
		Keyed{Key: "bad", Inner: nil},
		Keyed{Key: "b", Inner: Read{TSR: 2, Round: 1}},
	}
	buf, err := AppendCoalesced(nil, "w", "s0", msgs)
	if err == nil {
		t.Fatal("expected an encode error for the nil inner message")
	}
	var decoded []Message
	r := bytes.NewReader(buf)
	for {
		env, derr := DecodeFrame(r)
		if derr != nil {
			break
		}
		for _, e := range Expand(env) {
			decoded = append(decoded, e.Msg)
		}
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d messages, want the 2 encodable ones", len(decoded))
	}
}

// TestValidFrozenSetLinearScan covers the small-set duplicate detection
// (≤ smallFrozenSet entries scan linearly, no map) on both sides of the
// threshold.
func TestValidFrozenSetLinearScan(t *testing.T) {
	mk := func(n int, dup bool) []types.FrozenEntry {
		fs := make([]types.FrozenEntry, n)
		for i := range fs {
			fs[i] = types.FrozenEntry{Reader: types.ReaderID(i), PW: types.Tagged{TS: 1, Val: "v"}}
		}
		if dup && n >= 2 {
			fs[n-1].Reader = fs[0].Reader
		}
		return fs
	}
	for _, n := range []int{2, smallFrozenSet, smallFrozenSet + 1, 40} {
		if err := validFrozenSet(mk(n, false)); err != nil {
			t.Errorf("unique set of %d rejected: %v", n, err)
		}
		if err := validFrozenSet(mk(n, true)); !errors.Is(err, ErrMalformed) {
			t.Errorf("duplicate in set of %d: err = %v, want ErrMalformed", n, err)
		}
	}
}
