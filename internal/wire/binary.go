// Binary wire format: a hand-rolled, versioned, append-based codec
// that replaced the seed's gob framing on the TCP hot path.
//
// gob re-transmits type descriptors on every frame (each frame built a
// fresh Encoder/Decoder) and allocates a bytes.Buffer plus a body slice
// per envelope. The paper's whole point is that lucky operations finish
// in two communication rounds; burning the saved latency on codec
// overhead wastes it. This codec appends into caller-owned buffers
// (zero allocations in steady state on the encode side, one — the
// Message interface boxing — on the decode side for fixed-size
// messages) and is bounds-checked everywhere, since on TCP a Byzantine
// peer controls every byte after the handshake.
//
// Frame layout (see DESIGN.md §4 for the normative description):
//
//	frame    = len(4, big-endian) version(1) envelope
//	envelope = from(string) to(string) message
//	message  = kind(1) fields…
//
// Integers are varints (unsigned fields: uvarint; signed fields:
// zigzag varint), strings are uvarint length + raw bytes. A Batch
// message has no entry count: it extends to the end of the enclosing
// frame, which lets senders stream entries into a frame without
// knowing the count up front (AppendCoalesced).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"luckystore/internal/types"
)

// FormatVersion is the wire format version byte carried by every frame
// this codec emits. Version 3 added the speculative multi-writer fast
// path: PW carries a trailing spec flag byte (after the frozen set, so
// the v2 layout is a strict prefix) and servers may answer a spec PW
// with the new PW_NACK message. Decoders accept v3, v2 and v1 frames (a
// v1 tagged value decodes with writer 0; a v2 PW decodes with Spec
// false — exactly the meanings those bytes had when emitted), so mixed
// fleets can roll forward; anything else is rejected before the body is
// interpreted, so the format can evolve without silent
// misinterpretation.
const FormatVersion = 3

// FormatVersionV2 is the pre-speculation MWMR wire format: version 2
// added the writer component of the composite stamp (a writer varint in
// every tagged value) and the max stamp in PW_ACK, but has no spec flag
// on PW and no PW_NACK kind.
const FormatVersionV2 = 2

// FormatVersionV1 is the pre-MWMR wire format: identical layout minus
// the writer varint in tagged values and the max stamp in PW_ACK.
const FormatVersionV1 = 1

// maxWireIDLen bounds the From/To identity strings in a decoded
// envelope. Valid ProcIDs are a handful of bytes; anything longer is
// forged, and rejecting it early keeps a hostile frame from forcing a
// large string allocation.
const maxWireIDLen = 255

// --- Append-based encoders ------------------------------------------

// AppendMessage appends the binary encoding of m (kind byte + fields)
// to buf and returns the extended buffer. It errors on nil messages,
// unknown types, and structurally impossible nesting (keyed inside
// keyed, batch inside keyed, non-keyed inside batch); on error the
// returned buffer may carry a partial encoding, so callers that reuse
// buffers must truncate back to the pre-call length.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	switch v := m.(type) {
	case PW:
		buf = append(buf, byte(KindPW))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = appendTagged(buf, v.PW)
		buf = appendTagged(buf, v.W)
		buf = appendFrozenSet(buf, v.Frozen)
		// The spec flag trails the v2 layout (format v3).
		spec := byte(0)
		if v.Spec {
			spec = 1
		}
		return append(buf, spec), nil
	case PWNack:
		buf = append(buf, byte(KindPWNack))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = binary.AppendVarint(buf, int64(v.Max.Seq))
		return binary.AppendVarint(buf, int64(v.Max.Writer)), nil
	case PWAck:
		buf = append(buf, byte(KindPWAck))
		buf = binary.AppendVarint(buf, int64(v.TS))
		buf = binary.AppendVarint(buf, int64(v.Max.Seq))
		buf = binary.AppendVarint(buf, int64(v.Max.Writer))
		buf = binary.AppendUvarint(buf, uint64(len(v.NewRead)))
		for _, rs := range v.NewRead {
			buf = appendString(buf, string(rs.Reader))
			buf = binary.AppendVarint(buf, int64(rs.TSR))
		}
		return buf, nil
	case W:
		buf = append(buf, byte(KindW))
		buf = binary.AppendVarint(buf, int64(v.Round))
		buf = binary.AppendVarint(buf, v.Tag)
		buf = appendTagged(buf, v.C)
		return appendFrozenSet(buf, v.Frozen), nil
	case WAck:
		buf = append(buf, byte(KindWAck))
		buf = binary.AppendVarint(buf, int64(v.Round))
		return binary.AppendVarint(buf, v.Tag), nil
	case Read:
		buf = append(buf, byte(KindRead))
		buf = binary.AppendVarint(buf, int64(v.TSR))
		return binary.AppendVarint(buf, int64(v.Round)), nil
	case ReadAck:
		buf = append(buf, byte(KindReadAck))
		buf = binary.AppendVarint(buf, int64(v.TSR))
		buf = binary.AppendVarint(buf, int64(v.Round))
		buf = appendTagged(buf, v.PW)
		buf = appendTagged(buf, v.W)
		buf = appendTagged(buf, v.VW)
		buf = appendTagged(buf, v.Frozen.PW)
		return binary.AppendVarint(buf, int64(v.Frozen.TSR)), nil
	case ABDWrite:
		buf = append(buf, byte(KindABDWrite))
		buf = binary.AppendVarint(buf, v.Seq)
		return appendTagged(buf, v.C), nil
	case ABDWriteAck:
		buf = append(buf, byte(KindABDWriteAck))
		return binary.AppendVarint(buf, v.Seq), nil
	case ABDRead:
		buf = append(buf, byte(KindABDRead))
		return binary.AppendVarint(buf, v.Seq), nil
	case ABDReadAck:
		buf = append(buf, byte(KindABDReadAck))
		buf = binary.AppendVarint(buf, v.Seq)
		return appendTagged(buf, v.C), nil
	case Keyed:
		switch v.Inner.(type) {
		case Keyed:
			return buf, fmt.Errorf("encode: nested keyed envelope")
		case Batch:
			return buf, fmt.Errorf("encode: batch inside keyed envelope")
		case nil:
			return buf, fmt.Errorf("encode: keyed envelope with nil inner message")
		}
		buf = append(buf, byte(KindKeyed))
		buf = appendString(buf, v.Key)
		return AppendMessage(buf, v.Inner)
	case Batch:
		buf = append(buf, byte(KindBatch))
		for i, inner := range v.Msgs {
			if _, ok := inner.(Keyed); !ok {
				return buf, fmt.Errorf("encode: batch entry %d is %T, not keyed", i, inner)
			}
			var err error
			if buf, err = AppendMessage(buf, inner); err != nil {
				return buf, err
			}
		}
		return buf, nil
	case nil:
		return buf, fmt.Errorf("encode: nil message")
	default:
		return buf, fmt.Errorf("encode: unknown message type %T", m)
	}
}

// AppendEnvelope appends the binary encoding of env (from, to, message)
// to buf. Identities are capped at encode time exactly as the decoder
// caps them, so anything this encoder emits a compliant decoder
// accepts — there is no silently undeliverable frame.
func AppendEnvelope(buf []byte, env Envelope) ([]byte, error) {
	if err := checkWireIDs(env.From, env.To); err != nil {
		return buf, err
	}
	buf = appendString(buf, string(env.From))
	buf = appendString(buf, string(env.To))
	return AppendMessage(buf, env.Msg)
}

// checkWireIDs rejects identities the decoder would refuse
// (maxWireIDLen mirrors the decoder's cap).
func checkWireIDs(from, to types.ProcID) error {
	if len(from) > maxWireIDLen {
		return fmt.Errorf("encode: from identity %d bytes exceeds limit %d", len(from), maxWireIDLen)
	}
	if len(to) > maxWireIDLen {
		return fmt.Errorf("encode: to identity %d bytes exceeds limit %d", len(to), maxWireIDLen)
	}
	return nil
}

// AppendFrame appends one complete frame — length prefix, version byte,
// envelope — to buf. The length prefix covers everything after itself.
func AppendFrame(buf []byte, env Envelope) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, FormatVersion)
	buf, err := AppendEnvelope(buf, env)
	if err != nil {
		return buf[:start], fmt.Errorf("encode envelope: %w", err)
	}
	return patchFrameLen(buf, start)
}

// patchFrameLen fills in the 4-byte length prefix of the frame starting
// at start, rejecting frames over maxFrameSize.
func patchFrameLen(buf []byte, start int) ([]byte, error) {
	n := len(buf) - start - 4
	if n > maxFrameSize {
		return buf[:start], fmt.Errorf("encode envelope: frame size %d exceeds limit %d", n, maxFrameSize)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendTagged(buf []byte, c types.Tagged) []byte {
	buf = binary.AppendVarint(buf, int64(c.TS))
	buf = binary.AppendVarint(buf, int64(c.W))
	return appendString(buf, string(c.Val))
}

func appendFrozenSet(buf []byte, fs []types.FrozenEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(fs)))
	for _, f := range fs {
		buf = appendString(buf, string(f.Reader))
		buf = appendTagged(buf, f.PW)
		buf = binary.AppendVarint(buf, int64(f.TSR))
	}
	return buf
}

// --- Direct coalesced encoding --------------------------------------

// AppendCoalesced encodes a drained per-destination send queue directly
// into buf as a sequence of frames: maximal runs of Keyed messages
// stream into Batch frames — split by the same entry/byte budgets as
// CoalesceKeyed — and non-keyed messages are framed alone, preserving
// order. A single-message run collapses to a plain keyed frame, so the
// bytes on the wire are identical to the CoalesceKeyed + AppendFrame
// path; what this saves is building the intermediate []Message runs and
// Batch values and re-walking them.
//
// Messages that cannot encode (or would alone exceed the frame cap) are
// dropped, matching the Coalescer's "a failed send is a crashed
// process" stance; the first such error is returned after the rest of
// the queue has been encoded.
func AppendCoalesced(buf []byte, from, to types.ProcID, msgs []Message) ([]byte, error) {
	if err := checkWireIDs(from, to); err != nil {
		return buf, err
	}
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	frameStart := -1 // start of the open batch frame, -1 when none
	kindPos := 0     // offset of the open frame's KindBatch byte
	count := 0       // entries in the open batch frame
	runBytes := 0    // approxSize sum of those entries — CoalesceKeyed's counter
	finish := func() {
		if frameStart < 0 {
			return
		}
		var err error
		buf, err = finishBatchFrame(buf, frameStart, kindPos, count)
		if err != nil {
			fail(err)
		}
		frameStart, count, runBytes = -1, 0, 0
	}
	for _, m := range msgs {
		if _, keyed := m.(Keyed); !keyed {
			finish()
			nbuf, err := AppendFrame(buf, Envelope{From: from, To: to, Msg: m})
			if err != nil {
				fail(err)
				continue
			}
			buf = nbuf
			continue
		}
		// Split the run before this message would blow a budget, using
		// exactly CoalesceKeyed's accounting (approxSize sums) so both
		// paths split identical runs at identical entries — the
		// byte-identity the BatchSender contract promises.
		sz := approxSize(m)
		if frameStart >= 0 && (count >= batchEntriesBudget || runBytes+sz > batchBytesBudget) {
			finish()
		}
		if frameStart < 0 {
			frameStart = len(buf)
			buf = append(buf, 0, 0, 0, 0, FormatVersion)
			buf = appendString(buf, string(from))
			buf = appendString(buf, string(to))
			kindPos = len(buf)
			buf = append(buf, byte(KindBatch))
		}
		msgStart := len(buf)
		nbuf, err := AppendMessage(buf, m)
		if err != nil {
			buf = nbuf[:msgStart] // roll back the partial encoding
			fail(err)
			continue
		}
		buf = nbuf
		count++
		runBytes += sz
		if len(buf)-frameStart-4 > maxFrameSize {
			// A single message pushed the frame past the hard cap —
			// only possible when approxSize underestimated wildly, a
			// case CoalesceKeyed would turn into an un-encodable frame.
			// Give the message a frame of its own; if it does not fit
			// alone either, it is undeliverable and dropped.
			buf = buf[:msgStart]
			count--
			runBytes -= sz
			if count == 0 {
				buf = buf[:frameStart]
				frameStart = -1
			} else {
				finish()
			}
			nbuf, err := AppendFrame(buf, Envelope{From: from, To: to, Msg: m})
			if err != nil {
				fail(err)
				continue
			}
			buf = nbuf
		}
	}
	finish()
	return buf, firstErr
}

// finishBatchFrame closes a streamed batch frame holding count entries:
// a single-entry batch collapses to a plain keyed frame (the KindBatch
// byte at kindPos is cut out), an empty one vanishes, and the length
// prefix is patched last.
func finishBatchFrame(buf []byte, start, kindPos, count int) ([]byte, error) {
	if count == 0 {
		return buf[:start], nil
	}
	if count == 1 {
		copy(buf[kindPos:], buf[kindPos+1:])
		buf = buf[:len(buf)-1]
	}
	return patchFrameLen(buf, start)
}

// WriteCoalesced encodes msgs for one destination with AppendCoalesced
// into a pooled scratch buffer and writes all resulting frames with a
// single Write call.
func WriteCoalesced(w io.Writer, from, to types.ProcID, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	bp := getFrameBuf()
	buf, err := AppendCoalesced((*bp)[:0], from, to, msgs)
	var werr error
	if len(buf) > 0 {
		_, werr = w.Write(buf)
	}
	*bp = buf
	putFrameBuf(bp)
	if err != nil {
		return err
	}
	if werr != nil {
		return fmt.Errorf("write frames: %w", werr)
	}
	return nil
}

// --- Bounds-checked decoders ----------------------------------------

// DecodeMessage decodes one current-format message from the front of b
// and returns the remaining bytes. A Batch message extends to the end
// of b (its frame), so it always returns an empty remainder. Every
// decode failure wraps ErrMalformed; the decoder never panics and never
// allocates more than the input could justify, whatever the bytes
// claim.
func DecodeMessage(b []byte) (Message, []byte, error) {
	d := decoder{b: b, ver: FormatVersion}
	m := d.message(0)
	if d.err != nil {
		return nil, nil, d.err
	}
	return m, d.b, nil
}

// DecodeEnvelope decodes a complete current-format envelope (from, to,
// message) from b, requiring that every byte is consumed.
func DecodeEnvelope(b []byte) (Envelope, error) {
	return DecodeEnvelopeVersion(FormatVersion, b)
}

// DecodeEnvelopeVersion decodes an envelope encoded in the given wire
// format version — the version byte of the frame the body arrived in.
// Versions 1, 2 and 3 are supported.
func DecodeEnvelopeVersion(ver byte, b []byte) (Envelope, error) {
	if ver != FormatVersion && ver != FormatVersionV2 && ver != FormatVersionV1 {
		return Envelope{}, fmt.Errorf("%w: unsupported wire format version %d", ErrMalformed, ver)
	}
	d := decoder{b: b, ver: ver}
	var env Envelope
	env.From = d.procID()
	env.To = d.procID()
	env.Msg = d.message(0)
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes after message", len(d.b))
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	return env, nil
}

// decoder is a sticky-error cursor over one frame body. All methods are
// no-ops once err is set, so decode sequences read linearly without
// per-field error plumbing. ver is the frame's format version: v1
// bodies lack the writer component, which decodes as writer 0.
type decoder struct {
	b   []byte
	ver byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: decode: "+format, append([]any{ErrMalformed}, args...)...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("unexpected end of frame")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// str decodes a length-prefixed string of at most max bytes. The length
// is checked against both max and the bytes actually present before
// anything is allocated.
func (d *decoder) str(max int) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(max) {
		d.fail("string length %d exceeds limit %d", n, max)
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds remaining frame", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// procID decodes an identity string, interning the well-known process
// ids so steady-state decoding of From/To/reader fields is
// allocation-free.
func (d *decoder) procID() types.ProcID {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxWireIDLen {
		d.fail("identity length %d exceeds limit %d", n, maxWireIDLen)
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("identity length %d exceeds remaining frame", n)
		return ""
	}
	raw := d.b[:n]
	d.b = d.b[n:]
	if id, ok := procIDIntern[string(raw)]; ok { // no-alloc map lookup
		return id
	}
	return types.ProcID(raw)
}

func (d *decoder) tagged() types.Tagged {
	ts := d.varint()
	var w int64
	if d.ver >= 2 {
		w = d.varint()
	}
	val := d.str(maxFrameSize)
	return types.Tagged{TS: types.TS(ts), W: types.WID(w), Val: types.Value(val)}
}

func (d *decoder) frozenSet() []types.FrozenEntry {
	cnt := d.uvarint()
	if d.err != nil || cnt == 0 {
		return nil
	}
	if cnt > maxFrozenEntries {
		d.fail("frozen set too large (%d)", cnt)
		return nil
	}
	// Preallocate no more than the remaining bytes could hold (every
	// entry is ≥ 5 bytes), so a forged count cannot force a huge
	// allocation; append grows only as entries actually decode.
	fs := make([]types.FrozenEntry, 0, min(cnt, uint64(len(d.b)/5)+1))
	for i := uint64(0); i < cnt && d.err == nil; i++ {
		var f types.FrozenEntry
		f.Reader = d.procID()
		f.PW = d.tagged()
		f.TSR = types.ReaderTS(d.varint())
		fs = append(fs, f)
	}
	if d.err != nil {
		return nil
	}
	return fs
}

// message decodes one message. depth tracks envelope nesting: 0 at the
// top of a frame, 1 inside a Batch, 2 inside a Keyed. Batches exist
// only at depth 0 and Keyed only above depth 2, so recursion is bounded
// by a constant — a hostile frame cannot drive the decoder into deep
// recursion.
func (d *decoder) message(depth int) Message {
	k := Kind(d.byte())
	if d.err != nil {
		return nil
	}
	switch k {
	case KindPW:
		var m PW
		m.TS = types.TS(d.varint())
		m.PW = d.tagged()
		m.W = d.tagged()
		m.Frozen = d.frozenSet()
		if d.ver >= 3 {
			m.Spec = d.byte() != 0
		}
		return m
	case KindPWNack:
		if d.ver < 3 {
			d.fail("PW_NACK in a v%d frame", d.ver)
			return nil
		}
		var m PWNack
		m.TS = types.TS(d.varint())
		m.Max.Seq = types.TS(d.varint())
		m.Max.Writer = types.WID(d.varint())
		return m
	case KindPWAck:
		var m PWAck
		m.TS = types.TS(d.varint())
		if d.ver >= 2 {
			m.Max.Seq = types.TS(d.varint())
			m.Max.Writer = types.WID(d.varint())
		}
		cnt := d.uvarint()
		if d.err == nil && cnt > maxFrozenEntries {
			d.fail("newread set too large (%d)", cnt)
		}
		if d.err == nil && cnt > 0 {
			m.NewRead = make([]types.ReadStamp, 0, min(cnt, uint64(len(d.b)/3)+1))
			for i := uint64(0); i < cnt && d.err == nil; i++ {
				var rs types.ReadStamp
				rs.Reader = d.procID()
				rs.TSR = types.ReaderTS(d.varint())
				m.NewRead = append(m.NewRead, rs)
			}
		}
		return m
	case KindW:
		var m W
		m.Round = int(d.varint())
		m.Tag = d.varint()
		m.C = d.tagged()
		m.Frozen = d.frozenSet()
		return m
	case KindWAck:
		var m WAck
		m.Round = int(d.varint())
		m.Tag = d.varint()
		return m
	case KindRead:
		var m Read
		m.TSR = types.ReaderTS(d.varint())
		m.Round = int(d.varint())
		return m
	case KindReadAck:
		var m ReadAck
		m.TSR = types.ReaderTS(d.varint())
		m.Round = int(d.varint())
		m.PW = d.tagged()
		m.W = d.tagged()
		m.VW = d.tagged()
		m.Frozen.PW = d.tagged()
		m.Frozen.TSR = types.ReaderTS(d.varint())
		return m
	case KindABDWrite:
		var m ABDWrite
		m.Seq = d.varint()
		m.C = d.tagged()
		return m
	case KindABDWriteAck:
		return ABDWriteAck{Seq: d.varint()}
	case KindABDRead:
		return ABDRead{Seq: d.varint()}
	case KindABDReadAck:
		var m ABDReadAck
		m.Seq = d.varint()
		m.C = d.tagged()
		return m
	case KindKeyed:
		if depth >= 2 {
			d.fail("nested keyed envelope")
			return nil
		}
		var m Keyed
		m.Key = d.str(MaxKeyLen)
		m.Inner = d.message(2)
		return m
	case KindBatch:
		if depth != 0 {
			d.fail("nested batch envelope")
			return nil
		}
		if len(d.b) == 0 {
			d.fail("empty batch")
			return nil
		}
		// A batch extends to the end of its frame; the entry count is
		// implicit. Capacity is bounded by the bytes actually present
		// (every keyed entry is ≥ 5 bytes).
		msgs := make([]Message, 0, min(uint64(MaxBatchEntries), uint64(len(d.b)/5)+1))
		for len(d.b) > 0 && d.err == nil {
			if len(msgs) >= MaxBatchEntries {
				d.fail("batch too large")
				return nil
			}
			inner := d.message(1)
			if d.err != nil {
				return nil
			}
			if _, ok := inner.(Keyed); !ok {
				d.fail("batch entry %d is %T, not keyed", len(msgs), inner)
				return nil
			}
			msgs = append(msgs, inner)
		}
		return Batch{Msgs: msgs}
	default:
		d.fail("unknown message kind %d", int(k))
		return nil
	}
}

// procIDIntern maps the well-known process identities to shared string
// values so decoding them never allocates. Ids outside the table (huge
// clusters, forged peers) fall back to a fresh allocation and still
// work — the table is a fast path, not a limit.
var procIDIntern = func() map[string]types.ProcID {
	const interned = 128
	const internedWriters = 16
	t := make(map[string]types.ProcID, 2*interned+internedWriters)
	for i := 0; i < internedWriters; i++ {
		w := types.WriterIDN(i)
		t[string(w)] = w
	}
	for i := 0; i < interned; i++ {
		s, r := types.ServerID(i), types.ReaderID(i)
		t[string(s)] = s
		t[string(r)] = r
	}
	return t
}()
