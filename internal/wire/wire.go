// Package wire defines every message exchanged between clients and
// servers, for the core protocol (Figures 1–3 of the paper), the
// two-phase variant (Figures 6–8), the regular variant (Appendix D) and
// the ABD baseline. It also provides structural validation — essential
// in a Byzantine setting, where a malicious server may send arbitrarily
// malformed payloads — and the versioned binary codec used by the TCP
// transport (binary.go, codec.go; DESIGN.md §4 specifies the format).
//
// Servers in the paper never talk to each other and never send
// unsolicited messages; every message below therefore flows either
// client→server (request) or server→client (acknowledgement).
package wire

import (
	"errors"
	"fmt"

	"luckystore/internal/types"
)

// Kind discriminates message types on the wire and in dispatch tables.
type Kind int

// Message kinds. Values start at 1 so a zero Kind marks an invalid or
// forged payload.
const (
	KindPW Kind = iota + 1
	KindPWAck
	KindW
	KindWAck
	KindRead
	KindReadAck
	KindABDWrite
	KindABDWriteAck
	KindABDRead
	KindABDReadAck
	KindKeyed
	KindBatch
	KindPWNack
)

func (k Kind) String() string {
	switch k {
	case KindPW:
		return "PW"
	case KindPWAck:
		return "PW_ACK"
	case KindW:
		return "W"
	case KindWAck:
		return "WRITE_ACK"
	case KindRead:
		return "READ"
	case KindReadAck:
		return "READ_ACK"
	case KindABDWrite:
		return "ABD_WRITE"
	case KindABDWriteAck:
		return "ABD_WRITE_ACK"
	case KindABDRead:
		return "ABD_READ"
	case KindABDReadAck:
		return "ABD_READ_ACK"
	case KindKeyed:
		return "KEYED"
	case KindBatch:
		return "BATCH"
	case KindPWNack:
		return "PW_NACK"
	default:
		return fmt.Sprintf("invalid-kind(%d)", int(k))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
}

// ErrMalformed is wrapped by every validation failure so callers can
// recognize (and discard) Byzantine garbage with errors.Is.
var ErrMalformed = errors.New("malformed message")

// PW is the pre-write message of WRITE (Fig. 1 line 4):
// PW〈ts, pw, w, frozen〉. The Frozen set carries values frozen for slow
// READs detected during the previous WRITE.
//
// Spec (format v3) marks a speculative multi-writer pre-write: the
// writer skipped the stamp-query round and chose the stamp from its
// cache. Servers apply the writer-stamp rule to speculative PWs only —
// a Spec PW whose stamp is not strictly above the server's installed
// pw is answered with PW_NACK and makes no state change — so a stale
// cache is caught server-side instead of trusted. v2 peers neither
// send nor receive the flag; a non-spec PW behaves exactly as before.
type PW struct {
	TS     types.TS
	PW     types.Tagged
	W      types.Tagged
	Frozen []types.FrozenEntry
	Spec   bool
}

// Kind implements Message.
func (PW) Kind() Kind { return KindPW }

// PWAck is the server reply to PW (Fig. 3 line 8):
// PW_ACK〈ts, newread〉. NewRead reports readers whose slow READs the
// writer has not yet frozen a value for.
//
// Max (format v2) is the stamp of the server's pw field after applying
// the PW — under writer contention it can exceed the acknowledged
// write's own stamp, which is how a writer observes that it raced
// another writer. v1 peers neither send nor receive it; a zero Max
// claims nothing.
type PWAck struct {
	TS      types.TS
	Max     types.Stamp
	NewRead []types.ReadStamp
}

// Kind implements Message.
func (PWAck) Kind() Kind { return KindPWAck }

// PWNack is the server's rejection of a speculative PW (format v3): the
// pre-write's stamp was not strictly above the server's installed pw
// stamp, so the server made no state change. Max carries the installed
// stamp, which the writer folds into its cache before falling back to
// the full query-round slow path. Only Spec PWs are ever NACKed — the
// non-speculative pre-write keeps its unconditional max-merge ACK.
type PWNack struct {
	TS  types.TS
	Max types.Stamp
}

// Kind implements Message.
func (PWNack) Kind() Kind { return KindPWNack }

// W is the write-phase message W〈round, tag, c〉 (Fig. 1 line 10), also
// used by the reader's write-back (Fig. 2 line 27, where the tag is the
// reader timestamp). In the two-phase variant the writer's W message
// additionally carries the frozen set (Fig. 6 line 9).
type W struct {
	Round  int
	Tag    int64 // writer: ts of the WRITE; reader write-back: tsr of the READ
	C      types.Tagged
	Frozen []types.FrozenEntry // two-phase variant only; empty otherwise
}

// Kind implements Message.
func (W) Kind() Kind { return KindW }

// WAck is the server reply WRITE_ACK〈round, tag〉 to a W message
// (Fig. 3 line 16).
type WAck struct {
	Round int
	Tag   int64
}

// Kind implements Message.
func (WAck) Kind() Kind { return KindWAck }

// Read is the reader's round message READ〈tsr, rnd〉 (Fig. 2 line 16).
type Read struct {
	TSR   types.ReaderTS
	Round int
}

// Kind implements Message.
func (Read) Kind() Kind { return KindRead }

// ReadAck is the server reply
// READ_ACK〈tsr, rnd, pw, w, vw, frozen_j〉 (Fig. 3 line 11).
type ReadAck struct {
	TSR    types.ReaderTS
	Round  int
	PW     types.Tagged
	W      types.Tagged
	VW     types.Tagged
	Frozen types.FrozenPair
}

// Kind implements Message.
func (ReadAck) Kind() Kind { return KindReadAck }

// ABDWrite carries a timestamped value in the ABD baseline; it is used
// both by the writer's single phase and by the reader's write-back
// phase.
type ABDWrite struct {
	Seq int64 // client-local operation tag used to match acknowledgements
	C   types.Tagged
}

// Kind implements Message.
func (ABDWrite) Kind() Kind { return KindABDWrite }

// ABDWriteAck acknowledges an ABDWrite.
type ABDWriteAck struct {
	Seq int64
}

// Kind implements Message.
func (ABDWriteAck) Kind() Kind { return KindABDWriteAck }

// ABDRead queries a server's current pair in the ABD baseline.
type ABDRead struct {
	Seq int64
}

// Kind implements Message.
func (ABDRead) Kind() Kind { return KindABDRead }

// ABDReadAck returns a server's current pair in the ABD baseline.
type ABDReadAck struct {
	Seq int64
	C   types.Tagged
}

// Kind implements Message.
func (ABDReadAck) Kind() Kind { return KindABDReadAck }

// MaxKeyLen bounds register names in Keyed envelopes.
const MaxKeyLen = 255

// Keyed wraps any protocol message with a register name, multiplexing
// many independent registers over one server set (internal/keyed).
type Keyed struct {
	Key   string
	Inner Message
}

// Kind implements Message.
func (Keyed) Kind() Kind { return KindKeyed }

// MaxBatchEntries bounds the number of messages one Batch may carry; a
// correct sender coalesces what accumulated during one in-flight flush,
// which is bounded by the number of concurrent per-key operations, so an
// enormous batch is necessarily forged.
const MaxBatchEntries = 1 << 16

// Batch carries several Keyed messages for the same destination in one
// frame, amortizing per-message network cost under concurrent multi-key
// traffic. Transports unwrap batches at the endpoint boundary (simnet on
// delivery, tcpnet on decode), so automata and demultiplexers only ever
// see the inner Keyed messages.
type Batch struct {
	Msgs []Message
}

// Kind implements Message.
func (Batch) Kind() Kind { return KindBatch }

// maxFrozenEntries bounds the frozen set a client accepts in one
// message; a correct writer freezes at most one value per reader, so a
// larger set is necessarily forged.
const maxFrozenEntries = 1 << 16

// Validate checks structural well-formedness of a message. It rejects
// payloads no correct process would send: a non-⊥ value tagged with
// ts0, out-of-range round numbers, invalid process ids inside frozen or
// newread sets, and nil messages. Byzantine-*valued* (but well-formed)
// lies are deliberately accepted — defeating those is the protocol's
// job, not the codec's.
func Validate(m Message) error {
	switch v := m.(type) {
	case PW:
		if err := validTagged(v.PW); err != nil {
			return fmt.Errorf("PW.pw: %w", err)
		}
		if err := validTagged(v.W); err != nil {
			return fmt.Errorf("PW.w: %w", err)
		}
		if v.TS <= types.TS0 {
			return fmt.Errorf("%w: PW.ts %d not positive", ErrMalformed, v.TS)
		}
		return validFrozenSet(v.Frozen)
	case PWAck:
		if v.TS <= types.TS0 {
			return fmt.Errorf("%w: PW_ACK.ts %d not positive", ErrMalformed, v.TS)
		}
		if v.Max.Seq < types.TS0 || v.Max.Writer < 0 {
			return fmt.Errorf("%w: PW_ACK.max stamp %v negative", ErrMalformed, v.Max)
		}
		if len(v.NewRead) > maxFrozenEntries {
			return fmt.Errorf("%w: newread set too large (%d)", ErrMalformed, len(v.NewRead))
		}
		for _, rs := range v.NewRead {
			if !rs.Reader.IsReader() {
				return fmt.Errorf("%w: newread entry for non-reader %q", ErrMalformed, rs.Reader)
			}
		}
		return nil
	case PWNack:
		if v.TS <= types.TS0 {
			return fmt.Errorf("%w: PW_NACK.ts %d not positive", ErrMalformed, v.TS)
		}
		if v.Max.Seq < types.TS0 || v.Max.Writer < 0 {
			return fmt.Errorf("%w: PW_NACK.max stamp %v negative", ErrMalformed, v.Max)
		}
		return nil
	case W:
		if v.Round < 1 || v.Round > 3 {
			return fmt.Errorf("%w: W.round %d out of range", ErrMalformed, v.Round)
		}
		if err := validTagged(v.C); err != nil {
			return fmt.Errorf("W.c: %w", err)
		}
		return validFrozenSet(v.Frozen)
	case WAck:
		if v.Round < 1 || v.Round > 3 {
			return fmt.Errorf("%w: WRITE_ACK.round %d out of range", ErrMalformed, v.Round)
		}
		return nil
	case Read:
		if v.Round < 1 {
			return fmt.Errorf("%w: READ.round %d not positive", ErrMalformed, v.Round)
		}
		if v.TSR <= types.ReaderTS0 {
			return fmt.Errorf("%w: READ.tsr %d not positive", ErrMalformed, v.TSR)
		}
		return nil
	case ReadAck:
		if v.Round < 1 {
			return fmt.Errorf("%w: READ_ACK.round %d not positive", ErrMalformed, v.Round)
		}
		// Checked field by field — READ_ACK is the hottest ack on the
		// wire, and a map literal here costs an allocation per call.
		if err := validTagged(v.PW); err != nil {
			return fmt.Errorf("READ_ACK.pw: %w", err)
		}
		if err := validTagged(v.W); err != nil {
			return fmt.Errorf("READ_ACK.w: %w", err)
		}
		if err := validTagged(v.VW); err != nil {
			return fmt.Errorf("READ_ACK.vw: %w", err)
		}
		if err := validTagged(v.Frozen.PW); err != nil {
			return fmt.Errorf("READ_ACK.frozen.pw: %w", err)
		}
		return nil
	case ABDWrite:
		return validTagged(v.C)
	case ABDWriteAck, ABDRead:
		return nil
	case ABDReadAck:
		return validTagged(v.C)
	case Keyed:
		if v.Key == "" {
			return fmt.Errorf("%w: empty key", ErrMalformed)
		}
		if len(v.Key) > MaxKeyLen {
			return fmt.Errorf("%w: key longer than %d bytes", ErrMalformed, MaxKeyLen)
		}
		switch v.Inner.(type) {
		case Keyed:
			return fmt.Errorf("%w: nested keyed envelope", ErrMalformed)
		case Batch:
			// A batch may carry keyed messages, never the other way
			// round: past the endpoint boundary nothing must be able to
			// smuggle a batch into an automaton.
			return fmt.Errorf("%w: batch inside keyed envelope", ErrMalformed)
		}
		if err := Validate(v.Inner); err != nil {
			return fmt.Errorf("keyed %q: %w", v.Key, err)
		}
		return nil
	case Batch:
		if len(v.Msgs) == 0 {
			return fmt.Errorf("%w: empty batch", ErrMalformed)
		}
		if len(v.Msgs) > MaxBatchEntries {
			return fmt.Errorf("%w: batch too large (%d)", ErrMalformed, len(v.Msgs))
		}
		for i, inner := range v.Msgs {
			if _, keyed := inner.(Keyed); !keyed {
				return fmt.Errorf("%w: batch entry %d is %T, not keyed", ErrMalformed, i, inner)
			}
			if err := Validate(inner); err != nil {
				return fmt.Errorf("batch entry %d: %w", i, err)
			}
		}
		return nil
	case nil:
		return fmt.Errorf("%w: nil message", ErrMalformed)
	default:
		return fmt.Errorf("%w: unknown message type %T", ErrMalformed, m)
	}
}

func validTagged(c types.Tagged) error {
	if c.TS < types.TS0 {
		return fmt.Errorf("%w: negative timestamp %d", ErrMalformed, c.TS)
	}
	if c.W < 0 {
		return fmt.Errorf("%w: negative writer id %d", ErrMalformed, c.W)
	}
	if c.TS == types.TS0 && c.Val != "" {
		return fmt.Errorf("%w: non-⊥ value with timestamp ts0", ErrMalformed)
	}
	return nil
}

// smallFrozenSet is the size up to which duplicate detection scans the
// prefix linearly instead of building a map. Frozen sets hold at most
// one entry per reader with an outstanding slow READ, so in practice
// they are tiny and the allocation-free scan is both the common and the
// fast case.
const smallFrozenSet = 8

func validFrozenSet(fs []types.FrozenEntry) error {
	if len(fs) > maxFrozenEntries {
		return fmt.Errorf("%w: frozen set too large (%d)", ErrMalformed, len(fs))
	}
	var seen map[types.ProcID]bool
	if len(fs) > smallFrozenSet {
		seen = make(map[types.ProcID]bool, len(fs))
	}
	for i, f := range fs {
		if !f.Reader.IsReader() {
			return fmt.Errorf("%w: frozen entry for non-reader %q", ErrMalformed, f.Reader)
		}
		if seen != nil {
			if seen[f.Reader] {
				return fmt.Errorf("%w: duplicate frozen entry for %q", ErrMalformed, f.Reader)
			}
			seen[f.Reader] = true
		} else {
			for _, g := range fs[:i] {
				if g.Reader == f.Reader {
					return fmt.Errorf("%w: duplicate frozen entry for %q", ErrMalformed, f.Reader)
				}
			}
		}
		if err := validTagged(f.PW); err != nil {
			return fmt.Errorf("frozen entry for %q: %w", f.Reader, err)
		}
	}
	return nil
}
