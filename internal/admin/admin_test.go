package admin

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"luckystore/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("test_ops_total", "Test counter.").Add(7)
	var ready atomic.Bool
	srv, err := Listen("127.0.0.1:0", Options{
		Registry: reg,
		Ready: func() error {
			if !ready.Load() {
				return errors.New("quorum unreachable")
			}
			return nil
		},
		Stamps: func(w io.Writer) error {
			_, err := fmt.Fprintln(w, "alpha 3 1")
			return err
		},
		Extra: map[string]http.Handler{
			"/debug/extra": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "extra")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "test_ops_total 7") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != 503 || !strings.Contains(body, "quorum unreachable") {
		t.Fatalf("/readyz (failing): code=%d body=%q", code, body)
	}
	ready.Store(true)
	if code, body := get(t, base+"/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz (passing): code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/debug/stamps"); code != 200 || body != "alpha 3 1\n" {
		t.Fatalf("/debug/stamps: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/debug/extra"); code != 200 || body != "extra" {
		t.Fatalf("/debug/extra: code=%d body=%q", code, body)
	}
}

func TestAdminDefaults(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("/metrics with nil registry: code=%d", code)
	}
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz with nil Ready: code=%d", code)
	}
	if code, _ := get(t, base+"/debug/stamps"); code != 404 {
		t.Fatalf("/debug/stamps with nil Stamps: code=%d", code)
	}
}
