// Package admin serves the operational plane of a lucky-protocol
// process over plain HTTP: Prometheus-text metrics, liveness and
// readiness probes, and a race-free dump of the per-key stamps a server
// currently holds. It is deliberately tiny — net/http, no framework, no
// external deps — so every daemon (luckyd, luckyrouter, luckyload's
// self-hosted fleets) can expose the same surface with one call.
package admin

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"luckystore/internal/metrics"
)

// Options configures the endpoints a Server exposes. Every field is
// optional: a nil Registry serves an empty /metrics page, a nil Ready
// makes /readyz always succeed, a nil Stamps disables /debug/stamps
// with 404.
type Options struct {
	// Registry renders on /metrics in Prometheus text format.
	Registry *metrics.Registry
	// Ready gates /readyz: nil error → 200, otherwise 503 with the
	// error text. Typical implementations probe quorum reachability.
	Ready func() error
	// Stamps writes the server's current per-key ⟨seq, writerID⟩
	// stamps to w (one "key seq writer" line per register), served on
	// /debug/stamps. It must be safe to call concurrently with
	// operation traffic.
	Stamps func(w io.Writer) error
	// Extra mounts additional handlers by path (e.g. "/debug/ring").
	Extra map[string]http.Handler
}

// Server is a running admin listener.
type Server struct {
	ln   net.Listener
	http *http.Server
	done chan struct{}
}

// Listen starts the admin plane on addr ("host:port"; ":0" picks a free
// port — see Addr). It returns once the listener is bound; requests are
// served on background goroutines until Close.
func Listen(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if opts.Registry != nil {
			_ = opts.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness: the process is up and serving its admin plane.
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Ready != nil {
			if err := opts.Ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %v\n", err)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
	if opts.Stamps != nil {
		mux.HandleFunc("/debug/stamps", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := opts.Stamps(w); err != nil {
				// Headers are gone; append the error so a truncated dump
				// is distinguishable from a complete one.
				fmt.Fprintf(w, "# error: %v\n", err)
			}
		})
	}
	for path, h := range opts.Extra {
		mux.Handle(path, h)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{ln: ln, http: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr is the bound address, useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for the serve loop to exit.
// In-flight handlers may still be running; this is an abrupt stop, fit
// for process shutdown.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}
