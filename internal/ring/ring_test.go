package ring

import (
	"fmt"
	"testing"

	"luckystore/internal/keyed"
)

func clusterSet(n int) []ClusterID {
	ids := make([]ClusterID, n)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// Acceptance: Lookup is a pure function of (seed, ClusterMap) — two
// rings built independently from the same inputs agree on every key,
// regardless of the order the cluster set was listed in. This is the
// cross-process-restart stability contract: there is no hidden
// per-process state (map iteration order, pointer hashing) in the
// placement.
func TestLookupDeterministic(t *testing.T) {
	ids := clusterSet(5)
	a, err := New(42, 0, ids)
	if err != nil {
		t.Fatal(err)
	}
	// Same set, reversed insertion order, built from a ClusterMap.
	rev := make([]ClusterID, len(ids))
	for i, c := range ids {
		rev[len(ids)-1-i] = c
	}
	b, err := ClusterMap{Epoch: 7, Clusters: rev}.Ring(42, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(5000) {
		if got, want := b.Lookup(k), a.Lookup(k); got != want {
			t.Fatalf("Lookup(%q) = %s on reordered ring, want %s", k, got, want)
		}
	}
}

// Golden placements: these exact mappings must never change once
// shipped — a silent hash-function change would strand every key on
// the wrong cluster after a process restart. If this test fails, the
// hash changed; that is a migration event, not a test to update.
func TestLookupGolden(t *testing.T) {
	r, err := New(1, 0, clusterSet(4))
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]ClusterID{
		"key-0":              "c3",
		"key-1":              "c0",
		"key-2":              "c0",
		"key-3":              "c1",
		"key-4":              "c0",
		"k0":                 "c1",
		"k1":                 "c2",
		"user:alice/profile": "c0",
	}
	for k, want := range golden {
		if got := r.Lookup(k); got != want {
			t.Errorf("Lookup(%q) = %s, want golden %s", k, got, want)
		}
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	a, _ := New(1, 0, clusterSet(4))
	b, _ := New(2, 0, clusterSet(4))
	moved := 0
	keys := testKeys(2000)
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			moved++
		}
	}
	// Independent placements agree on ~1/N of keys by chance; anything
	// below half moving would mean the seed barely matters.
	if frac := float64(moved) / float64(len(keys)); frac < 0.5 {
		t.Errorf("only %.0f%% of keys moved between seeds; seed is not mixed into placement", frac*100)
	}
}

// Acceptance: adding one cluster to a fleet of N remaps at most about
// 1/(N+1) of keys (the consistent-hashing contract), and — stronger,
// and deterministic — every remapped key moves TO the new cluster:
// survivors never trade keys with each other, which is what keeps a
// rebalance's handoff traffic proportional to the new cluster's share.
func TestAddClusterRemapBound(t *testing.T) {
	const numKeys = 20000
	keys := testKeys(numKeys)
	for _, n := range []int{2, 4, 8} {
		before, err := New(9, 0, clusterSet(n))
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(9, 0, clusterSet(n+1))
		if err != nil {
			t.Fatal(err)
		}
		newID := ID(n)
		moved := 0
		for _, k := range keys {
			was, is := before.Lookup(k), after.Lookup(k)
			if was == is {
				continue
			}
			moved++
			if is != newID {
				t.Fatalf("n=%d: key %q moved %s→%s, not to the new cluster %s", n, k, was, is, newID)
			}
		}
		frac := float64(moved) / float64(numKeys)
		ideal := 1.0 / float64(n+1)
		// ε covers vnode-induced skew: 64 vnodes keep shares within a
		// few percent of ideal.
		if eps := 0.06; frac > ideal+eps {
			t.Errorf("n=%d: %.3f of keys remapped, want ≤ %.3f + %.2f", n, frac, ideal, eps)
		}
		if moved == 0 {
			t.Errorf("n=%d: adding a cluster moved no keys", n)
		}
	}
}

// Every cluster of a small fleet must own a non-trivial share of the
// keyspace — a cluster that owns (almost) nothing means the vnode
// count is too low for balanced scale-out.
func TestLoadSpread(t *testing.T) {
	r, err := New(3, 0, clusterSet(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ClusterID]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, c := range r.Clusters() {
		frac := float64(counts[c]) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("cluster %s owns %.1f%% of keys, want a sane share of the ideal 25%%", c, frac*100)
		}
	}
}

// Acceptance: ring routing composes with keyed.ShardIndex — the
// within-cluster shard placement — without collapsing: the keys a
// cluster owns still spread across all of its shards (the two hash
// functions are independent), and two distinct keys remain distinct
// registers regardless of landing on the same (cluster, shard).
func TestComposesWithShardIndex(t *testing.T) {
	const shards = 8
	r, err := New(5, 0, clusterSet(3))
	if err != nil {
		t.Fatal(err)
	}
	perShard := map[ClusterID][]int{}
	for _, c := range r.Clusters() {
		perShard[c] = make([]int, shards)
	}
	keys := testKeys(12000)
	for _, k := range keys {
		perShard[r.Lookup(k)][keyed.ShardIndex(k, shards)]++
	}
	for c, byShard := range perShard {
		for s, n := range byShard {
			if n == 0 {
				t.Errorf("cluster %s shard %d owns no keys: ring and shard hashes are correlated", c, s)
			}
		}
	}
	// Distinctness: the register namespace is the key itself on both
	// levels, so no two different keys can ever collide into one
	// register — spot-check that identical routing never makes the
	// pair ambiguous by construction.
	if keyed.ShardIndex("key-1", shards) == keyed.ShardIndex("key-1", shards) &&
		r.Lookup("key-1") != r.Lookup("key-1") {
		t.Fatal("Lookup is not even self-consistent")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(1, 0, nil); err == nil {
		t.Error("New accepted an empty cluster set")
	}
	if _, err := New(1, 0, []ClusterID{"c0", "c0"}); err == nil {
		t.Error("New accepted duplicate cluster ids")
	}
	if _, err := New(1, 0, []ClusterID{""}); err == nil {
		t.Error("New accepted an empty cluster id")
	}
}

func TestLookupAllocs(t *testing.T) {
	r, err := New(1, 0, clusterSet(4))
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() { _ = r.Lookup("key-somewhat-long-name-42") }); n != 0 {
		t.Errorf("Lookup allocates %.1f objects per call, want 0", n)
	}
}
