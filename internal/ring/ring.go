// Package ring implements the seeded consistent-hash ring that maps
// register keys to clusters in a scale-out deployment: N independent
// lucky clusters, each a full 2t+b+1 quorum group, with every key owned
// by exactly one of them.
//
// The mapping is a pure function of (seed, ClusterMap): the same seed
// and the same cluster set produce the same ring in every process and
// across restarts, so routers, proxies and tooling agree on placement
// without coordination. Virtual nodes smooth the key distribution and
// bound the fraction of keys that move when the fleet changes: adding
// one cluster to N remaps about 1/(N+1) of the keyspace, and every
// remapped key moves to the new cluster (keys never shuffle between
// survivors).
//
// ClusterMap epochs make fleet changes explicit: each change bumps the
// epoch, and routing layers use the epoch to detect that a key's cached
// placement predates the current map (see internal/router).
package ring

import (
	"fmt"
	"sort"
	"strconv"
)

// ClusterID names one cluster of the fleet. IDs are small strings
// ("c0", "c1", …) so maps serialize and compare trivially; any
// non-empty string works.
type ClusterID string

// ID returns the conventional id of the i-th cluster.
func ID(i int) ClusterID { return ClusterID("c" + strconv.Itoa(i)) }

// DefaultVnodes is the virtual-node count per cluster used when a
// configuration passes 0. 64 points per cluster keeps the ring small
// (a few KiB) while bounding per-cluster load skew to a few percent.
const DefaultVnodes = 64

// ClusterMap is a versioned cluster set: the fleet membership at one
// epoch. Epochs are bumped by whoever administers the fleet (the
// router's Add/RemoveCluster); two maps with the same Clusters but
// different Epochs build identical rings — the epoch versions the
// membership, it does not perturb placement.
type ClusterMap struct {
	Epoch    uint64
	Clusters []ClusterID
}

// Ring builds the consistent-hash ring for the map under the given
// seed. Vnodes ≤ 0 selects DefaultVnodes.
func (m ClusterMap) Ring(seed int64, vnodes int) (*Ring, error) {
	return New(seed, vnodes, m.Clusters)
}

// Ring is an immutable consistent-hash ring: a sorted circle of hash
// points, vnodes per cluster. Build once, share freely — Lookup is
// read-only and allocation-free.
type Ring struct {
	seed   int64
	points []point // sorted by (hash, cluster)
	ids    []ClusterID
}

// point is one virtual node on the circle.
type point struct {
	hash    uint64
	cluster ClusterID
}

// New builds a ring for the cluster set. The insertion order of
// clusters does not matter: points are placed by hash alone, and ties
// break by cluster id, so any permutation of the same set yields an
// identical ring.
func New(seed int64, vnodes int, clusters []ClusterID) (*Ring, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("ring: empty cluster set")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[ClusterID]bool, len(clusters))
	ids := make([]ClusterID, 0, len(clusters))
	for _, c := range clusters {
		if c == "" {
			return nil, fmt.Errorf("ring: empty cluster id")
		}
		if seen[c] {
			return nil, fmt.Errorf("ring: duplicate cluster id %q", c)
		}
		seen[c] = true
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := &Ring{seed: seed, ids: ids}
	r.points = make([]point, 0, len(ids)*vnodes)
	for _, c := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(seed, c, v), cluster: c})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].cluster < r.points[j].cluster
	})
	return r, nil
}

// Clusters returns the cluster set in sorted order. The slice is the
// ring's own — callers must not mutate it.
func (r *Ring) Clusters() []ClusterID { return r.ids }

// Seed returns the seed the ring was built with.
func (r *Ring) Seed() int64 { return r.seed }

// Lookup returns the cluster owning key: the first virtual node at or
// clockwise after the key's hash, wrapping at the top. It allocates
// nothing — the hot routing path of every Put and Get in a scale-out
// deployment.
func (r *Ring) Lookup(key string) ClusterID {
	h := keyHash(r.seed, key)
	// Binary search for the first point with hash ≥ h.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0 // wrap around the top of the circle
	}
	return r.points[lo].cluster
}

// FNV-64a, inlined so hashing allocates nothing (hash/fnv's interface
// costs an allocation per hasher). The constants are the standard
// offset basis and prime.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// keyHash positions a key on the circle: FNV-64a over the seed bytes
// then the key bytes. Folding the seed into the stream (rather than
// xoring it afterward) makes distinct seeds produce genuinely
// independent placements.
func keyHash(seed int64, key string) uint64 {
	h := hashSeed(seed)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// vnodeHash positions virtual node v of a cluster on the circle.
func vnodeHash(seed int64, c ClusterID, v int) uint64 {
	h := hashSeed(seed)
	for i := 0; i < len(c); i++ {
		h ^= uint64(c[i])
		h *= fnvPrime64
	}
	// A separator byte keeps ("c1", 23) and ("c12", 3) from colliding
	// byte-stream-wise before the index is mixed in.
	h ^= '/'
	h *= fnvPrime64
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(v>>shift) & 0xff
		h *= fnvPrime64
	}
	return mix64(h)
}

// mix64 is the standard 64-bit avalanche finalizer (MurmurHash3's
// fmix64). Raw FNV mixes similar inputs — consecutive vnode indexes,
// keys sharing a prefix — into correlated positions, which skews the
// circle badly enough to break the 1/(N+1) remap bound; the finalizer
// restores full-width diffusion while staying allocation-free.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashSeed starts an FNV-64a stream with the 8 seed bytes mixed in.
func hashSeed(seed int64) uint64 {
	h := uint64(fnvOffset64)
	u := uint64(seed)
	for shift := 0; shift < 64; shift += 8 {
		h ^= (u >> shift) & 0xff
		h *= fnvPrime64
	}
	return h
}
