package abd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/checker"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{T: -1}).Validate(); err == nil {
		t.Error("negative t accepted")
	}
	if err := (Config{T: 1, NumReaders: -1}).Validate(); err == nil {
		t.Error("negative readers accepted")
	}
	cfg := Config{T: 2}
	if cfg.S() != 5 || cfg.Quorum() != 3 {
		t.Errorf("S=%d Quorum=%d, want 5 and 3", cfg.S(), cfg.Quorum())
	}
}

func TestServerAutomaton(t *testing.T) {
	s := NewServer()
	out := s.Step(types.WriterID(), wire.ABDWrite{Seq: 1, C: types.Tagged{TS: 2, Val: "b"}})
	if len(out) != 1 {
		t.Fatalf("no ack: %v", out)
	}
	// Older write ignored, still acked.
	out = s.Step(types.WriterID(), wire.ABDWrite{Seq: 2, C: types.Tagged{TS: 1, Val: "a"}})
	if len(out) != 1 {
		t.Fatalf("stale write not acked")
	}
	out = s.Step(types.ReaderID(0), wire.ABDRead{Seq: 3})
	ack := out[0].Msg.(wire.ABDReadAck)
	if ack.C != (types.Tagged{TS: 2, Val: "b"}) {
		t.Errorf("read ack = %v, want 〈2,b〉", ack.C)
	}
	if s.Step(types.WriterID(), wire.Read{TSR: 1, Round: 1}) != nil {
		t.Error("ABD server answered a lucky-protocol message")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{T: 2, NumReaders: 2})
	if err := c.Writer().Write("hello"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != (types.Tagged{TS: 1, Val: "hello"}) {
		t.Errorf("Read() = %v", got)
	}
	if c.Writer().Rounds() != 1 || c.Reader(0).Rounds() != 2 {
		t.Errorf("round counts = (%d,%d), want (1,2)", c.Writer().Rounds(), c.Reader(0).Rounds())
	}
}

func TestBottomOnFreshRegister(t *testing.T) {
	c := newTestCluster(t, Config{T: 1, NumReaders: 1})
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsBottom() {
		t.Errorf("Read() = %v, want ⊥", got)
	}
}

func TestToleratesTCrashes(t *testing.T) {
	c := newTestCluster(t, Config{T: 2, NumReaders: 1})
	c.CrashServer(0)
	c.CrashServer(1)
	if err := c.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
}

func TestTimesOutBeyondT(t *testing.T) {
	c := newTestCluster(t, Config{T: 1, NumReaders: 1, OpTimeout: 150 * time.Millisecond})
	c.CrashServer(0)
	c.CrashServer(1) // t+1 crashes: no majority
	if err := c.Writer().Write("v"); !errors.Is(err, ErrOpTimeout) {
		t.Errorf("Write = %v, want ErrOpTimeout", err)
	}
}

func TestRejectsBottomWrite(t *testing.T) {
	c := newTestCluster(t, Config{T: 1, NumReaders: 0})
	if err := c.Writer().Write(""); err == nil {
		t.Error("Write(⊥) accepted")
	}
}

func TestAtomicityUnderConcurrency(t *testing.T) {
	c := newTestCluster(t, Config{T: 2, NumReaders: 3})
	rec := checker.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 40; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			inv := time.Now()
			if err := c.Writer().Write(v); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			rec.Add(checker.Op{
				Client: types.WriterID(), Kind: checker.KindWrite,
				Value:  types.Tagged{TS: types.TS(i), Val: v},
				Invoke: inv, Return: time.Now(), Rounds: 1,
			})
		}
	}()
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				inv := time.Now()
				got, err := c.Reader(r).Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				rec.Add(checker.Op{
					Client: types.ReaderID(r), Kind: checker.KindRead,
					Value: got, Invoke: inv, Return: time.Now(), Rounds: 2,
				})
			}
		}()
	}
	wg.Wait()
	for _, v := range checker.CheckAtomicity(rec.Ops()) {
		t.Errorf("atomicity violation: %v", v)
	}
}
