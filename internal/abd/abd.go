// Package abd implements the classic Attiya–Bar-Noy–Dolev SWMR atomic
// register emulation over 2t+1 crash-prone servers ("Sharing memory
// robustly in message-passing systems", JACM 1995) — the baseline the
// paper's introduction measures itself against: in ABD every READ takes
// two communication round-trips (query + write-back), and every WRITE
// takes one.
//
// The implementation is deliberately minimal and tolerates only crash
// failures (b = 0), exactly like the original.
package abd

import (
	"errors"
	"fmt"
	"time"

	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// DefaultOpTimeout bounds one operation, converting violated model
// assumptions into errors.
const DefaultOpTimeout = 30 * time.Second

// ErrOpTimeout is returned when an operation cannot gather a majority.
var ErrOpTimeout = errors.New("abd: operation timed out (majority unavailable?)")

// Config holds the ABD deployment parameters.
type Config struct {
	// T is the number of crash failures tolerated; S = 2t+1.
	T          int
	NumReaders int
	OpTimeout  time.Duration
}

// S returns the number of servers, 2t+1.
func (c Config) S() int { return 2*c.T + 1 }

// Quorum returns the majority size t+1.
func (c Config) Quorum() int { return c.T + 1 }

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.T < 0 {
		return fmt.Errorf("abd config: t = %d must be non-negative", c.T)
	}
	if c.NumReaders < 0 {
		return fmt.Errorf("abd config: NumReaders = %d must be non-negative", c.NumReaders)
	}
	return nil
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return DefaultOpTimeout
}

// Server is the ABD server automaton: one stored pair, update on
// write-if-newer, report on read.
type Server struct {
	c types.Tagged
}

// NewServer creates a server holding 〈ts0,⊥〉.
func NewServer() *Server { return &Server{c: types.Bottom()} }

// Step implements node.Automaton.
func (s *Server) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	if wire.Validate(m) != nil {
		return nil
	}
	switch v := m.(type) {
	case wire.ABDWrite:
		if s.c.Less(v.C) {
			s.c = v.C
		}
		return []transport.Outgoing{{To: from, Msg: wire.ABDWriteAck{Seq: v.Seq}}}
	case wire.ABDRead:
		return []transport.Outgoing{{To: from, Msg: wire.ABDReadAck{Seq: v.Seq, C: s.c}}}
	default:
		return nil
	}
}

// Writer is the ABD writer: one store round per WRITE.
type Writer struct {
	cfg Config
	ep  transport.Endpoint
	ts  types.TS
	seq int64
}

// NewWriter creates the writer client.
func NewWriter(cfg Config, ep transport.Endpoint) *Writer { return &Writer{cfg: cfg, ep: ep} }

// Write stores v: one round-trip to a majority.
func (w *Writer) Write(v types.Value) error {
	if v == "" {
		return errors.New("abd: cannot write the initial value ⊥")
	}
	w.ts++
	w.seq++
	c := types.Tagged{TS: w.ts, Val: v}
	if err := broadcast(w.ep, w.cfg.S(), wire.ABDWrite{Seq: w.seq, C: c}); err != nil {
		return err
	}
	return awaitWriteAcks(w.ep, w.cfg, w.seq)
}

// Rounds reports the (constant) round-trip complexity of an ABD WRITE.
func (w *Writer) Rounds() int { return 1 }

// Reader is the ABD reader: query round + write-back round.
type Reader struct {
	cfg Config
	ep  transport.Endpoint
	seq int64
}

// NewReader creates a reader client.
func NewReader(cfg Config, ep transport.Endpoint) *Reader { return &Reader{cfg: cfg, ep: ep} }

// Read returns the register value after the classic two phases.
func (r *Reader) Read() (types.Tagged, error) {
	deadline := time.NewTimer(r.cfg.opTimeout())
	defer deadline.Stop()

	// Phase 1: query a majority, adopt the highest pair.
	r.seq++
	if err := broadcast(r.ep, r.cfg.S(), wire.ABDRead{Seq: r.seq}); err != nil {
		return types.Tagged{}, err
	}
	best := types.Bottom()
	got := make(map[types.ProcID]bool, r.cfg.S())
	for len(got) < r.cfg.Quorum() {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return types.Tagged{}, transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.ABDReadAck)
			if !isAck || !env.From.IsServer() || a.Seq != r.seq || got[env.From] {
				continue
			}
			got[env.From] = true
			if best.Less(a.C) {
				best = a.C
			}
		case <-deadline.C:
			return types.Tagged{}, fmt.Errorf("abd READ query: %w", ErrOpTimeout)
		}
	}

	// Phase 2: write the adopted pair back to a majority.
	r.seq++
	if err := broadcast(r.ep, r.cfg.S(), wire.ABDWrite{Seq: r.seq, C: best}); err != nil {
		return types.Tagged{}, err
	}
	wbGot := make(map[types.ProcID]bool, r.cfg.S())
	for len(wbGot) < r.cfg.Quorum() {
		select {
		case env, ok := <-r.ep.Recv():
			if !ok {
				return types.Tagged{}, transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.ABDWriteAck)
			if !isAck || !env.From.IsServer() || a.Seq != r.seq {
				continue
			}
			wbGot[env.From] = true
		case <-deadline.C:
			return types.Tagged{}, fmt.Errorf("abd READ write-back: %w", ErrOpTimeout)
		}
	}
	return best, nil
}

// Rounds reports the (constant) round-trip complexity of an ABD READ.
func (r *Reader) Rounds() int { return 2 }

func broadcast(ep transport.Endpoint, s int, m wire.Message) error {
	out := make([]transport.Outgoing, s)
	for i := range out {
		out[i] = transport.Outgoing{To: types.ServerID(i), Msg: m}
	}
	return transport.SendAll(ep, out)
}

func awaitWriteAcks(ep transport.Endpoint, cfg Config, seq int64) error {
	deadline := time.NewTimer(cfg.opTimeout())
	defer deadline.Stop()
	got := make(map[types.ProcID]bool, cfg.S())
	for len(got) < cfg.Quorum() {
		select {
		case env, ok := <-ep.Recv():
			if !ok {
				return transport.ErrClosed
			}
			a, isAck := env.Msg.(wire.ABDWriteAck)
			if !isAck || !env.From.IsServer() || a.Seq != seq {
				continue
			}
			got[env.From] = true
		case <-deadline.C:
			return fmt.Errorf("abd WRITE: %w", ErrOpTimeout)
		}
	}
	return nil
}

// Cluster wires an ABD deployment over a simulated network.
type Cluster struct {
	cfg     Config
	net     transport.Network
	sim     *simnet.Network
	runners []*node.Runner
	writer  *Writer
	readers []*Reader
}

// NewCluster builds and starts an ABD cluster.
func NewCluster(cfg Config, simOpts ...simnet.Option) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID())
	ids = append(ids, types.ReaderIDs(cfg.NumReaders)...)
	sim, err := simnet.New(ids, simOpts...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, net: sim, sim: sim}
	for i := 0; i < cfg.S(); i++ {
		ep, err := sim.Endpoint(types.ServerID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		r := node.NewRunner(ep, NewServer())
		c.runners = append(c.runners, r)
		r.Start()
	}
	wep, err := sim.Endpoint(types.WriterID())
	if err != nil {
		c.Close()
		return nil, err
	}
	c.writer = NewWriter(cfg, wep)
	for i := 0; i < cfg.NumReaders; i++ {
		rep, err := sim.Endpoint(types.ReaderID(i))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.readers = append(c.readers, NewReader(cfg, rep))
	}
	return c, nil
}

// Writer returns the writer client.
func (c *Cluster) Writer() *Writer { return c.writer }

// Reader returns the i-th reader client.
func (c *Cluster) Reader(i int) *Reader { return c.readers[i] }

// CrashServer crash-stops server i.
func (c *Cluster) CrashServer(i int) { c.runners[i].Crash() }

// Close stops all runners and the network.
func (c *Cluster) Close() {
	if c.net != nil {
		_ = c.net.Close()
	}
	for _, r := range c.runners {
		r.Stop()
	}
}
