package keyed

import (
	"sort"

	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// snapshotter mirrors storage.Snapshotter structurally, so this
// package stays free of a storage dependency.
type snapshotter interface {
	SnapshotRecords(emit func(from types.ProcID, m wire.Message) error) error
}

// SnapshotRecords implements storage.Snapshotter for the keyed server:
// each register's snapshot records are emitted wrapped in that key's
// Keyed envelope, in sorted key order so snapshots are deterministic.
// Registers whose automata cannot snapshot themselves are skipped.
// The caller must be quiesced relative to stepping (compaction and
// recovery both own their automaton privately).
func (s *Server) SnapshotRecords(emit func(from types.ProcID, m wire.Message) error) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.regs))
	for k := range s.regs {
		keys = append(keys, k)
	}
	regs := make(map[string]snapshotter, len(keys))
	for k, reg := range s.regs {
		if sn, ok := reg.(snapshotter); ok {
			regs[k] = sn
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		sn, ok := regs[k]
		if !ok {
			continue
		}
		key := k
		if err := sn.SnapshotRecords(func(from types.ProcID, m wire.Message) error {
			return emit(from, wire.Keyed{Key: key, Inner: m})
		}); err != nil {
			return err
		}
	}
	return nil
}

// Step implements node.Automaton across the whole sharded server for
// single-goroutine contexts — log replay during recovery steps keyed
// records through the same routing the live traffic used. It must not
// race the shard workers: recover before the runner starts.
func (s *ShardedServer) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	i := 0
	if k, ok := m.(wire.Keyed); ok {
		i = ShardIndex(k.Key, len(s.shards))
	}
	return s.shards[i].Step(from, m)
}
