package keyed

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func TestShardIndexStableAndInRange(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("key-%d", i)
			idx := ShardIndex(key, n)
			if idx < 0 || idx >= n {
				t.Fatalf("ShardIndex(%q, %d) = %d out of range", key, n, idx)
			}
			if again := ShardIndex(key, n); again != idx {
				t.Fatalf("ShardIndex(%q, %d) unstable: %d then %d", key, n, idx, again)
			}
		}
	}
}

func TestShardIndexSpreadsKeys(t *testing.T) {
	const n, keys = 8, 1000
	hit := make([]int, n)
	for i := 0; i < keys; i++ {
		hit[ShardIndex(fmt.Sprintf("key-%d", i), n)]++
	}
	for s, c := range hit {
		// A uniform hash puts ~125 keys per shard; an empty or wildly
		// overloaded shard means the hash is broken.
		if c < keys/n/4 || c > keys/n*4 {
			t.Errorf("shard %d holds %d of %d keys — skewed distribution %v", s, c, keys, hit)
		}
	}
}

func TestShardedServerRoutesKeysToOwningShard(t *testing.T) {
	const n = 4
	s := NewShardedServer(n, coreFactory)
	shards := s.Shards()
	route := s.Route()
	pw := wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom()}

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		m := wire.Keyed{Key: key, Inner: pw}
		idx := route(m)
		if idx != ShardIndex(key, n) {
			t.Fatalf("Route(%q) = %d, want %d", key, idx, ShardIndex(key, n))
		}
		out := shards[idx].Step(types.WriterID(), m)
		if len(out) != 1 {
			t.Fatalf("shard %d ignored %q", idx, key)
		}
		k := out[0].Msg.(wire.Keyed)
		if k.Key != key {
			t.Errorf("reply keyed to %q, want %q", k.Key, key)
		}
		if _, ok := k.Inner.(wire.PWAck); !ok {
			t.Errorf("inner reply = %T, want PWAck", k.Inner)
		}
	}
	if s.Regs() != 20 {
		t.Errorf("Regs() = %d, want 20", s.Regs())
	}
}

func TestShardedServerKeysIndependent(t *testing.T) {
	s := NewShardedServer(4, coreFactory)
	shards := s.Shards()
	route := s.Route()

	write := wire.Keyed{Key: "written", Inner: wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "v"}, W: types.Bottom()}}
	shards[route(write)].Step(types.WriterID(), write)

	read := wire.Keyed{Key: "fresh", Inner: wire.Read{TSR: 1, Round: 1}}
	out := shards[route(read)].Step(types.ReaderID(0), read)
	ack := out[0].Msg.(wire.Keyed).Inner.(wire.ReadAck)
	if !ack.PW.IsBottom() {
		t.Errorf("fresh register contaminated: %+v", ack)
	}

	readBack := wire.Keyed{Key: "written", Inner: wire.Read{TSR: 1, Round: 1}}
	out = shards[route(readBack)].Step(types.ReaderID(0), readBack)
	ack = out[0].Msg.(wire.Keyed).Inner.(wire.ReadAck)
	if ack.PW != (types.Tagged{TS: 1, Val: "v"}) {
		t.Errorf("written register lost its value: %+v", ack)
	}
}

func TestShardedServerDropsUnkeyedAndMalformed(t *testing.T) {
	s := NewShardedServer(2, coreFactory)
	shards := s.Shards()
	route := s.Route()

	unkeyed := wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "a"}, W: types.Bottom()}
	if idx := route(unkeyed); idx != 0 {
		t.Errorf("Route(unkeyed) = %d, want 0", idx)
	}
	if out := shards[0].Step(types.WriterID(), unkeyed); out != nil {
		t.Error("unkeyed message answered")
	}
	bad := wire.Keyed{Key: "", Inner: wire.ABDRead{}}
	if out := shards[route(bad)].Step(types.WriterID(), bad); out != nil {
		t.Error("empty key answered")
	}
	if s.Regs() != 0 {
		t.Errorf("Regs() = %d after garbage, want 0", s.Regs())
	}
}

func TestShardedServerSingleShardFloor(t *testing.T) {
	s := NewShardedServer(0, coreFactory)
	if got := len(s.Shards()); got != 1 {
		t.Errorf("NewShardedServer(0) has %d shards, want floor of 1", got)
	}
}

// TestShardedConcurrentMultiKeyTraffic drives many keys through one
// sharded server set from concurrent per-key writer goroutines — the
// shard workers of every server interleave freely, and with -race this
// verifies exclusive shard ownership holds under fire.
func TestShardedConcurrentMultiKeyTraffic(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1, RoundTimeout: 20 * time.Millisecond}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
	net, err := simnet.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	servers := make([]*ShardedServer, cfg.S())
	runners := make([]*node.ShardedRunner, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		ep, err := net.Endpoint(types.ServerID(i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = NewShardedServer(4, coreFactory)
		runners[i] = node.NewShardedRunner(ep, servers[i].Shards(), servers[i].Route())
		runners[i].Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	wep, err := net.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	wd := NewDemux(wep)
	defer wd.Close()

	const keys, writesPerKey = 12, 8
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		sub, err := wd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := core.NewWriter(cfg, types.WriterID(), sub)
			for i := 1; i <= writesPerKey; i++ {
				if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("write %s #%d: %v", key, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i, s := range servers {
		if got := s.Regs(); got != keys {
			t.Errorf("server %d instantiated %d registers, want %d", i, got, keys)
		}
	}

	rep, err := net.Endpoint(types.ReaderID(0))
	if err != nil {
		t.Fatal(err)
	}
	rd := NewDemux(rep)
	defer rd.Close()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		sub, err := rd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.NewReader(cfg, types.ReaderID(0), sub).Read()
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		want := types.Tagged{TS: writesPerKey, Val: types.Value(fmt.Sprintf("v%d", writesPerKey))}
		if got != want {
			t.Errorf("%s = %+v, want %+v", key, got, want)
		}
	}
}

// TestEndToEndSharded runs a full write/read pair per key through a
// ShardedServer driven by a node.ShardedRunner over simnet, with the
// client side demultiplexed — the exact stack kv.Open assembles.
func TestEndToEndSharded(t *testing.T) {
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1, RoundTimeout: 20 * time.Millisecond}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
	net, err := simnet.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	runners := make([]*node.ShardedRunner, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		ep, err := net.Endpoint(types.ServerID(i))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewShardedServer(4, coreFactory)
		runners[i] = node.NewShardedRunner(ep, srv.Shards(), srv.Route())
		runners[i].Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	wep, err := net.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	wd := NewDemux(wep)
	defer wd.Close()
	rep, err := net.Endpoint(types.ReaderID(0))
	if err != nil {
		t.Fatal(err)
	}
	rd := NewDemux(rep)
	defer rd.Close()

	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		wsub, err := wd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.NewWriter(cfg, types.WriterID(), wsub).Write(types.Value("v-" + key)); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
		rsub, err := rd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.NewReader(cfg, types.ReaderID(0), rsub).Read()
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if got != (types.Tagged{TS: 1, Val: types.Value("v-" + key)}) {
			t.Errorf("%s = %+v", key, got)
		}
	}
}
