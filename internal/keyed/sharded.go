package keyed

import (
	"hash/fnv"
	"sort"
	"sync/atomic"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// ShardIndex maps a register name to its owning shard: FNV-1a over the
// key, mod the shard count. It is the single routing function shared by
// the server pool and anything that needs to reason about placement, so
// a key's automaton lives on exactly one shard. Shard counts below 1
// are treated as 1, matching NewShardedServer's floor.
func ShardIndex(key string, shards int) int {
	if shards < 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// ShardedServer is the keyed server split across shards: shard i holds
// the automata of every key with ShardIndex(key, n) == i in a plain,
// unlocked map. Each shard implements node.Automaton and must be
// stepped by exactly one goroutine — node.ShardedRunner's per-shard
// workers — which is what removes the global mutex keyed.Server takes
// on every message.
type ShardedServer struct {
	shards []*shard
	regs   atomic.Int64
}

// shard owns the automata of its keys exclusively; no locking anywhere.
type shard struct {
	parent  *ShardedServer
	regs    map[string]node.Automaton
	factory func() node.Automaton
}

var (
	_ node.Automaton     = (*shard)(nil)
	_ node.AppendStepper = (*shard)(nil)
)

// NewShardedServer creates a keyed server split across n shards whose
// per-register automata come from factory.
func NewShardedServer(n int, factory func() node.Automaton) *ShardedServer {
	if n < 1 {
		n = 1
	}
	s := &ShardedServer{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{
			parent:  s,
			regs:    make(map[string]node.Automaton),
			factory: factory,
		}
	}
	return s
}

// Shards returns the per-shard automata, for node.NewShardedRunner.
func (s *ShardedServer) Shards() []node.Automaton {
	out := make([]node.Automaton, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh
	}
	return out
}

// Route returns the dispatch function pairing this server with
// node.ShardedRunner: keyed messages go to their key's shard, anything
// else to shard 0 (whose Step drops it as malformed).
func (s *ShardedServer) Route() func(wire.Message) int {
	n := len(s.shards)
	return func(m wire.Message) int {
		if k, ok := m.(wire.Keyed); ok {
			return ShardIndex(k.Key, n)
		}
		return 0
	}
}

// Regs reports the number of instantiated registers across all shards.
// It is safe to call concurrently with stepping.
func (s *ShardedServer) Regs() int { return int(s.regs.Load()) }

// NumShards reports the shard count.
func (s *ShardedServer) NumShards() int { return len(s.shards) }

// RangeShard calls fn for every instantiated register of shard i in
// sorted key order. The shard's map is unlocked by design, so the call
// MUST run with exclusive ownership of the shard: on the shard's
// worker goroutine (node.StepPool.Do — how the admin API's live
// /debug/stamps walks a serving store) or on a quiesced server.
func (s *ShardedServer) RangeShard(i int, fn func(key string, reg node.Automaton)) {
	if i < 0 || i >= len(s.shards) {
		return
	}
	sh := s.shards[i]
	keys := make([]string, 0, len(sh.regs))
	for k := range sh.regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, sh.regs[k])
	}
}

// Step implements node.Automaton for one shard: unwrap, dispatch to the
// key's automaton, re-wrap. The map access is unlocked — the shard's
// worker goroutine is the only one ever here.
func (sh *shard) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	return sh.StepAppend(from, m, nil)
}

// StepAppend implements node.AppendStepper: the key's automaton appends
// its replies directly into out and the suffix is re-wrapped in place,
// so a shard worker with a scratch buffer steps without slice
// allocations.
func (sh *shard) StepAppend(from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing {
	k, ok := m.(wire.Keyed)
	// Validate m, not the unboxed k: re-boxing would allocate per step.
	if !ok || wire.Validate(m) != nil {
		return out
	}
	reg, exists := sh.regs[k.Key]
	if !exists {
		reg = sh.factory()
		sh.regs[k.Key] = reg
		sh.parent.regs.Add(1)
	}
	return rewrapAppended(k.Key, out, node.StepInto(reg, from, k.Inner, out))
}
