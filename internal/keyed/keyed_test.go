package keyed

import (
	"strings"
	"testing"
	"time"

	"luckystore/internal/core"
	"luckystore/internal/node"
	"luckystore/internal/simnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

func coreFactory() node.Automaton { return core.NewServer() }

func TestServerRoutesPerKey(t *testing.T) {
	s := NewServer(func() node.Automaton { return core.NewServer() })
	pw := wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "a"}, W: types.Bottom()}

	out := s.Step(types.WriterID(), wire.Keyed{Key: "alpha", Inner: pw})
	if len(out) != 1 {
		t.Fatalf("no reply: %v", out)
	}
	k, ok := out[0].Msg.(wire.Keyed)
	if !ok || k.Key != "alpha" {
		t.Fatalf("reply not keyed to alpha: %+v", out[0].Msg)
	}
	if _, ok := k.Inner.(wire.PWAck); !ok {
		t.Fatalf("inner reply = %T, want PWAck", k.Inner)
	}

	// A different key gets a fresh register: reading beta sees ⊥.
	rd := wire.Read{TSR: 1, Round: 1}
	out = s.Step(types.ReaderID(0), wire.Keyed{Key: "beta", Inner: rd})
	ack := out[0].Msg.(wire.Keyed).Inner.(wire.ReadAck)
	if !ack.PW.IsBottom() {
		t.Errorf("beta register contaminated by alpha write: %+v", ack)
	}
	// Alpha still has its value.
	out = s.Step(types.ReaderID(0), wire.Keyed{Key: "alpha", Inner: rd})
	ack = out[0].Msg.(wire.Keyed).Inner.(wire.ReadAck)
	if ack.PW != (types.Tagged{TS: 1, Val: "a"}) {
		t.Errorf("alpha register lost its value: %+v", ack)
	}
	if s.Regs() != 2 {
		t.Errorf("Regs() = %d, want 2", s.Regs())
	}
}

func TestServerDropsUnkeyedAndMalformed(t *testing.T) {
	s := NewServer(coreFactory)
	if out := s.Step(types.WriterID(), wire.PW{TS: 1, PW: types.Tagged{TS: 1, Val: "a"}, W: types.Bottom()}); out != nil {
		t.Error("unkeyed message answered")
	}
	if out := s.Step(types.WriterID(), wire.Keyed{Key: "", Inner: wire.ABDRead{}}); out != nil {
		t.Error("empty key answered")
	}
	nested := wire.Keyed{Key: "a", Inner: wire.Keyed{Key: "b", Inner: wire.ABDRead{}}}
	if out := s.Step(types.WriterID(), nested); out != nil {
		t.Error("nested keyed answered")
	}
	if s.Regs() != 0 {
		t.Errorf("malformed traffic instantiated %d registers", s.Regs())
	}
}

func newDemuxPair(t *testing.T) (*simnet.Network, *Demux, transport.Endpoint) {
	t.Helper()
	n, err := simnet.New([]types.ProcID{types.WriterID(), types.ServerID(0)})
	if err != nil {
		t.Fatal(err)
	}
	wep, err := n.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	sep, err := n.Endpoint(types.ServerID(0))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(wep)
	t.Cleanup(func() {
		_ = d.Close()
		_ = n.Close()
	})
	return n, d, sep
}

func TestDemuxRoutesRepliesByKey(t *testing.T) {
	_, d, sep := newDemuxPair(t)
	alpha, err := d.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := d.Open("beta")
	if err != nil {
		t.Fatal(err)
	}

	// Sends are wrapped with the key.
	if err := alpha.Send(types.ServerID(0), wire.ABDRead{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	env := <-sep.Recv()
	k, ok := env.Msg.(wire.Keyed)
	if !ok || k.Key != "alpha" {
		t.Fatalf("server received %+v, want keyed alpha", env.Msg)
	}

	// Replies route to the matching sub-endpoint only.
	reply := wire.Keyed{Key: "beta", Inner: wire.ABDReadAck{Seq: 9, C: types.Bottom()}}
	if err := sep.Send(types.WriterID(), reply); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-beta.Recv():
		ack, ok := env.Msg.(wire.ABDReadAck)
		if !ok || ack.Seq != 9 {
			t.Fatalf("beta got %+v", env.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("beta reply not delivered")
	}
	select {
	case env := <-alpha.Recv():
		t.Fatalf("alpha stole beta's reply: %+v", env)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestDemuxDropsRepliesForUnopenedKeys(t *testing.T) {
	_, d, sep := newDemuxPair(t)
	opened, err := d.Open("opened")
	if err != nil {
		t.Fatal(err)
	}
	if err := sep.Send(types.WriterID(), wire.Keyed{Key: "ghost", Inner: wire.ABDReadAck{Seq: 1, C: types.Bottom()}}); err != nil {
		t.Fatal(err)
	}
	if err := sep.Send(types.WriterID(), wire.Keyed{Key: "opened", Inner: wire.ABDReadAck{Seq: 2, C: types.Bottom()}}); err != nil {
		t.Fatal(err)
	}
	env := <-opened.Recv()
	if env.Msg.(wire.ABDReadAck).Seq != 2 {
		t.Fatalf("got %+v, ghost traffic leaked", env.Msg)
	}
}

func TestDemuxKeyValidationAndClose(t *testing.T) {
	_, d, _ := newDemuxPair(t)
	if _, err := d.Open(""); err == nil {
		t.Error("empty key opened")
	}
	if _, err := d.Open(strings.Repeat("k", wire.MaxKeyLen+1)); err == nil {
		t.Error("oversized key opened")
	}
	sub, err := d.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := d.Open("y"); err == nil {
		t.Error("Open succeeded after Close")
	}
}

// Full stack: core writer/reader over keyed endpoints against keyed
// servers — two independent registers on one 6-server deployment.
func TestEndToEndTwoRegisters(t *testing.T) {
	cfg := core.Config{T: 2, B: 1, Fw: 1, NumReaders: 1, RoundTimeout: 15 * time.Millisecond}
	ids := append(types.ServerIDs(cfg.S()), types.WriterID(), types.ReaderID(0))
	n, err := simnet.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var runners []*node.Runner
	for i := 0; i < cfg.S(); i++ {
		ep, err := n.Endpoint(types.ServerID(i))
		if err != nil {
			t.Fatal(err)
		}
		r := node.NewRunner(ep, NewServer(coreFactory))
		runners = append(runners, r)
		r.Start()
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	wep, err := n.Endpoint(types.WriterID())
	if err != nil {
		t.Fatal(err)
	}
	wd := NewDemux(wep)
	defer wd.Close()
	rep, err := n.Endpoint(types.ReaderID(0))
	if err != nil {
		t.Fatal(err)
	}
	rd := NewDemux(rep)
	defer rd.Close()

	for _, key := range []string{"users/42", "config"} {
		wsub, err := wd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		w := core.NewWriter(cfg, types.WriterID(), wsub)
		if err := w.Write(types.Value("value-of-" + key)); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if !w.LastMeta().Fast {
			t.Errorf("%s: write not fast over keyed transport", key)
		}
		rsub, err := rd.Open(key)
		if err != nil {
			t.Fatal(err)
		}
		r := core.NewReader(cfg, types.ReaderID(0), rsub)
		got, err := r.Read()
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if got.Val != types.Value("value-of-"+key) {
			t.Errorf("%s: Read() = %v", key, got)
		}
		if !r.LastMeta().Fast() {
			t.Errorf("%s: read not fast over keyed transport", key)
		}
	}
}
