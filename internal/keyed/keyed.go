// Package keyed multiplexes many independent registers over one set of
// servers: every protocol message travels wrapped in a wire.Keyed
// envelope naming its register, servers run one core automaton per key,
// and clients obtain per-key virtual endpoints from a demultiplexer.
//
// Each key is a completely independent SWMR atomic register with its
// own timestamp space and its own freezing state — the composition
// inherits the per-register guarantees (atomicity is compositional:
// linearizable objects compose).
package keyed

import (
	"fmt"
	"sort"
	"sync"

	"luckystore/internal/node"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// Server routes keyed messages to one inner automaton per register,
// created on first use by the factory. It implements node.Automaton.
type Server struct {
	mu      sync.Mutex
	regs    map[string]node.Automaton
	factory func() node.Automaton
}

var (
	_ node.Automaton     = (*Server)(nil)
	_ node.AppendStepper = (*Server)(nil)
)

// NewServer creates a keyed server whose per-register automata come
// from factory (e.g. func() node.Automaton { return core.NewServer() }).
func NewServer(factory func() node.Automaton) *Server {
	return &Server{regs: make(map[string]node.Automaton), factory: factory}
}

// Regs reports the number of instantiated registers (for tests).
func (s *Server) Regs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.regs)
}

// Range calls fn for every instantiated register in sorted key order.
// The lock is held across the iteration: callers are offline tooling
// (luckyctl stamps) and tests inspecting a quiesced server, never the
// hot path.
func (s *Server) Range(fn func(key string, reg node.Automaton)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.regs))
	for k := range s.regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, s.regs[k])
	}
}

// Step implements node.Automaton: unwrap, dispatch, re-wrap.
func (s *Server) Step(from types.ProcID, m wire.Message) []transport.Outgoing {
	return s.StepAppend(from, m, nil)
}

// StepAppend implements node.AppendStepper: the inner automaton appends
// its replies directly into out and the suffix is re-wrapped for the
// key in place — no intermediate slice per message.
func (s *Server) StepAppend(from types.ProcID, m wire.Message, out []transport.Outgoing) []transport.Outgoing {
	k, ok := m.(wire.Keyed)
	// Validate m, not the unboxed k: re-boxing would allocate per step.
	if !ok || wire.Validate(m) != nil {
		return out
	}
	s.mu.Lock()
	reg, exists := s.regs[k.Key]
	if !exists {
		reg = s.factory()
		s.regs[k.Key] = reg
	}
	s.mu.Unlock()
	return rewrapAppended(k.Key, out, node.StepInto(reg, from, k.Inner, out))
}

// rewrapAppended wraps the replies a keyed step appended past the
// caller's prefix back into the register's Keyed envelope.
func rewrapAppended(key string, prefix, out []transport.Outgoing) []transport.Outgoing {
	for i := len(prefix); i < len(out); i++ {
		out[i].Msg = wire.Keyed{Key: key, Inner: out[i].Msg}
	}
	return out
}

// Demux splits one client endpoint into per-key virtual endpoints: each
// Open(key) returns a transport.Endpoint that sends messages wrapped
// for that key and receives only that key's replies. Different keys can
// then run operations concurrently from one client process.
//
// Subscriptions live in a sync.Map so the routing pump does a lock-free
// read per envelope; the mutex guards only the cold Open/Close paths,
// keeping reply routing off every other key's critical path under
// concurrent multi-key traffic.
type Demux struct {
	inner transport.Endpoint

	subs sync.Map // key string → *transport.Mailbox

	mu     sync.Mutex // guards closed and the subs/Close race; never taken by pump
	closed bool
	done   chan struct{}
}

// NewDemux wraps an endpoint and starts the routing pump. The demux
// takes ownership: closing the demux closes the endpoint.
func NewDemux(ep transport.Endpoint) *Demux {
	d := &Demux{
		inner: ep,
		done:  make(chan struct{}),
	}
	go d.pump()
	return d
}

// Open returns the virtual endpoint for key. Opening the same key twice
// returns endpoints sharing one inbox; callers should hold one endpoint
// per key.
func (d *Demux) Open(key string) (transport.Endpoint, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, transport.ErrClosed
	}
	var mbox *transport.Mailbox
	if v, ok := d.subs.Load(key); ok {
		mbox = v.(*transport.Mailbox)
	} else {
		mbox = transport.NewMailbox()
		d.subs.Store(key, mbox)
	}
	return &subEndpoint{key: key, demux: d, mbox: mbox}, nil
}

// Flush implements transport.Flusher by delegating to the underlying
// endpoint when it buffers sends (a Coalescer); an unbuffered endpoint
// has nothing to drain. Per-key sends all funnel through the one inner
// endpoint, so one Flush covers every key.
func (d *Demux) Flush() error {
	if f, ok := d.inner.(transport.Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Close stops the pump, closes every per-key inbox and the underlying
// endpoint, and waits for the pump goroutine to exit.
func (d *Demux) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	err := d.inner.Close() // unblocks the pump
	<-d.done
	// No Open can race here: closed is set, so the subscription set is
	// frozen and every inbox can be joined.
	d.subs.Range(func(_, v any) bool {
		v.(*transport.Mailbox).Close()
		return true
	})
	return err
}

func (d *Demux) pump() {
	defer close(d.done)
	for env := range d.inner.Recv() {
		k, ok := env.Msg.(wire.Keyed)
		// Validate env.Msg, not the unboxed k: re-boxing would allocate
		// on every routed reply.
		if !ok || wire.Validate(env.Msg) != nil {
			continue // unkeyed or malformed traffic is dropped
		}
		v, ok := d.subs.Load(k.Key) // lock-free: no cross-key contention
		if !ok {
			continue // reply for a key this client never opened
		}
		_ = v.(*transport.Mailbox).Put(wire.Envelope{From: env.From, To: env.To, Msg: k.Inner})
	}
}

// subEndpoint is the per-key virtual endpoint.
type subEndpoint struct {
	key   string
	demux *Demux
	mbox  *transport.Mailbox
}

var _ transport.Endpoint = (*subEndpoint)(nil)

func (s *subEndpoint) ID() types.ProcID { return s.demux.inner.ID() }

func (s *subEndpoint) Send(to types.ProcID, m wire.Message) error {
	return s.demux.inner.Send(to, wire.Keyed{Key: s.key, Inner: m})
}

func (s *subEndpoint) Recv() <-chan wire.Envelope { return s.mbox.Out() }

// Close detaches the key's inbox from the demux.
func (s *subEndpoint) Close() error {
	s.demux.mu.Lock()
	if v, ok := s.demux.subs.Load(s.key); ok && v.(*transport.Mailbox) == s.mbox {
		s.demux.subs.Delete(s.key)
	}
	s.demux.mu.Unlock()
	s.mbox.Close()
	return nil
}

func validKey(key string) error {
	if key == "" {
		return fmt.Errorf("keyed: empty key")
	}
	if len(key) > wire.MaxKeyLen {
		return fmt.Errorf("keyed: key longer than %d bytes", wire.MaxKeyLen)
	}
	return nil
}
