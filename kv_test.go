package luckystore_test

import (
	"testing"
	"time"

	"luckystore"
)

func TestFacadeKVStore(t *testing.T) {
	store, err := luckystore.OpenKV(luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.Put("alpha", "a1"); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("beta", "b1"); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(0, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "a1" || got.TS != 1 {
		t.Errorf("Get(alpha) = %v", got)
	}
	got, err = store.Get(1, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "b1" || got.TS != 1 {
		t.Errorf("Get(beta) = %v", got)
	}
	pm, err := store.PutMeta("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Fast {
		t.Errorf("KV put not fast: %+v", pm)
	}
}

func TestFacadeKVAsyncAndBatch(t *testing.T) {
	store, err := luckystore.OpenKV(luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond}, luckystore.WithKVShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4", store.Shards())
	}

	var pf *luckystore.PutFuture = store.PutAsync("async", "v1")
	if err := pf.Wait(); err != nil {
		t.Fatal(err)
	}
	var gf *luckystore.GetFuture = store.GetAsync(0, "async")
	got, err := gf.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v1" {
		t.Errorf("GetAsync = %v", got)
	}

	puts := map[string]luckystore.Value{"b1": "x", "b2": "y", "b3": "z"}
	if err := store.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	vals, err := store.GetBatch(1, []string{"b1", "b2", "b3"})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range puts {
		if vals[k].Val != want {
			t.Errorf("GetBatch[%s] = %v, want %q", k, vals[k], want)
		}
	}
}

func TestFacadeKVValidation(t *testing.T) {
	if _, err := luckystore.OpenKV(luckystore.Config{T: 1, B: 2}); err == nil {
		t.Error("invalid KV config accepted")
	}
	if _, err := luckystore.OpenKVTCP(luckystore.Config{T: 1, B: 0, Fw: 1}, nil); err == nil {
		t.Error("OpenKVTCP accepted empty address map")
	}
}

func TestFacadeKVOverTCP(t *testing.T) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	addrs := make([]string, cfg.S())
	for i := range addrs {
		srv, err := luckystore.ListenTCPKV(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}
	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if err := store.Put("tcp/key", "networked"); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("tcp/other", "second register"); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(0, "tcp/key")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "networked" {
		t.Errorf("Get = %v", got)
	}
	got, err = store.Get(0, "tcp/other")
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "second register" {
		t.Errorf("Get = %v", got)
	}
	pm, err := store.PutMeta("tcp/key")
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Fast {
		t.Errorf("TCP KV put not fast on loopback: %+v", pm)
	}
}
