package luckystore

import (
	"fmt"
	"io"
	"strconv"

	"luckystore/internal/core"
	"luckystore/internal/keyed"
	"luckystore/internal/kv"
	"luckystore/internal/metrics"
	"luckystore/internal/node"
	"luckystore/internal/storage"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// WireFormatVersion is the version byte of the binary wire format TCP
// frames carry (DESIGN.md §4). Peers reject frames with any other
// version, so a cluster must be upgraded together when the format
// evolves; exposing the constant lets deployment tooling check
// compatibility before rolling.
const WireFormatVersion = wire.FormatVersion

// TCPServer is one storage server listening on a real TCP socket.
type TCPServer struct {
	inner *tcpnet.Server
	back  storage.Backend      // non-nil when disk-backed (WithTCPDataDir)
	srv   *keyed.ShardedServer // keyed state, nil for the single-register ListenTCP
	reg   *core.Server         // the single register, nil for ListenTCPKV
}

// Addr returns the listening address (host:port).
func (s *TCPServer) Addr() string { return s.inner.Addr() }

// ID returns the server's process id ("s0", "s1", …).
func (s *TCPServer) ID() ProcID { return s.inner.ID() }

// Close stops the server; to the rest of the cluster this is a crash.
// A disk-backed server closes its WAL after the listener — stepping
// has stopped by then, so the final flush+fsync captures every
// acknowledged operation.
func (s *TCPServer) Close() error {
	err := s.inner.Close()
	if s.back != nil {
		if cerr := s.back.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WriteStamps writes the server's live register stamps, one line per
// instantiated register: "key seq writer" (the single-register
// ListenTCP server prints key "-"). A sharded store is walked
// race-free without quiescing: each shard is visited on its own worker
// goroutine (node.StepPool.Do), the only goroutine allowed to touch
// its unlocked register map. This backs the admin API's /debug/stamps.
func (s *TCPServer) WriteStamps(w io.Writer) error {
	if s.srv == nil {
		_, wv, _ := s.reg.State() // the register locks internally
		_, err := fmt.Fprintf(w, "- %d %d\n", wv.TS, wv.W)
		return err
	}
	pool := s.inner.Pool()
	var werr error
	for i := 0; i < s.srv.NumShards(); i++ {
		ok := pool.Do(i, func(node.Automaton) {
			s.srv.RangeShard(i, func(key string, reg node.Automaton) {
				if werr != nil {
					return
				}
				cs, isReg := reg.(*core.Server)
				if !isReg {
					return
				}
				_, wv, _ := cs.State()
				_, werr = fmt.Fprintf(w, "%s %d %d\n", key, wv.TS, wv.W)
			})
		})
		if !ok {
			return fmt.Errorf("luckystore stamps: server closed")
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// ListenTCP starts storage server i on addr (use "127.0.0.1:0" to pick
// a free port). A production deployment runs one of these per machine;
// cmd/luckyd wraps it as a daemon. With WithTCPDataDir the server
// recovers its register from the directory's WAL before listening and
// writes through it before acknowledging.
func ListenTCP(i int, addr string, opts ...TCPOption) (*TCPServer, error) {
	var o tcpOptions
	for _, opt := range opts {
		opt(&o)
	}
	a := core.NewServer()
	if o.metrics != nil {
		a.SetMetrics(core.NewServerMetrics(o.metrics))
	}
	run := node.Automaton(a)
	back, err := o.openBackend(func() storage.Automaton { return core.NewServer() })
	if err != nil {
		return nil, fmt.Errorf("luckystore server %d storage: %w", i, err)
	}
	if back != nil {
		if _, err := storage.Recover(back, a); err != nil {
			_ = back.Close()
			return nil, fmt.Errorf("luckystore server %d recovery: %w", i, err)
		}
		d := storage.NewDurable(a, back, types.ServerID(i))
		if o.metrics != nil {
			d.SetMetrics(storage.NewDurableMetrics(o.metrics))
		}
		run = d
	}
	inner, err := tcpnet.Listen(types.ServerID(i), addr, run, o.serverOptions()...)
	if err != nil {
		if back != nil {
			_ = back.Close()
		}
		return nil, err
	}
	return &TCPServer{inner: inner, back: back, reg: a}, nil
}

// ServerAddrs builds the address map clients need from an ordered list
// of server addresses (index i becomes server "si").
func ServerAddrs(addrs []string) map[ProcID]string {
	m := make(map[ProcID]string, len(addrs))
	for i, a := range addrs {
		m[types.ServerID(i)] = a
	}
	return m
}

// NewTCPWriter connects the writer client to a TCP cluster. The
// returned closer tears the connections down.
func NewTCPWriter(cfg Config, servers map[ProcID]string) (*Writer, io.Closer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(servers) != cfg.S() {
		return nil, nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	ep, err := tcpnet.Dial(types.WriterID(), servers)
	if err != nil {
		return nil, nil, err
	}
	return core.NewWriter(cfg, types.WriterID(), ep), ep, nil
}

// NewTCPReader connects reader client i to a TCP cluster. The returned
// closer tears the connections down.
func NewTCPReader(cfg Config, i int, servers map[ProcID]string) (*Reader, io.Closer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(servers) != cfg.S() {
		return nil, nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	id := types.ReaderID(i)
	ep, err := tcpnet.Dial(id, servers)
	if err != nil {
		return nil, nil, err
	}
	return core.NewReader(cfg, id, ep), ep, nil
}

// TCPOption configures ListenTCP and ListenTCPKV.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	shards  int
	dataDir string
	metrics *metrics.Registry
}

// openBackend opens the durable file backend when WithTCPDataDir was
// given (instrumented when metrics are on), nil otherwise.
func (o *tcpOptions) openBackend(factory func() storage.Automaton) (storage.Backend, error) {
	if o.dataDir == "" {
		return nil, nil
	}
	back, err := storage.NewFile(o.dataDir, factory)
	if err != nil {
		return nil, err
	}
	if o.metrics != nil {
		back.SetMetrics(storage.NewFileMetrics(o.metrics))
	}
	return back, nil
}

// serverOptions translates the TCP options into tcpnet listener options.
func (o *tcpOptions) serverOptions() []tcpnet.ServerOption {
	if o.metrics == nil {
		return nil
	}
	return []tcpnet.ServerOption{tcpnet.WithServerMetrics(tcpnet.NewServerMetrics(o.metrics))}
}

// WithTCPMetrics threads live instrumentation through the server into
// reg: request/reply frame counters, per-key-class shard service
// latency, per-shard queue depths, register message counters, and —
// with WithTCPDataDir — WAL append/fsync latency and group-commit
// batch sizes. cmd/luckyd serves the registry on its admin listener's
// /metrics (DESIGN.md §13).
func WithTCPMetrics(reg *metrics.Registry) TCPOption {
	return func(o *tcpOptions) { o.metrics = reg }
}

// WithTCPShards sets how many shard workers the TCP KV server steps its
// per-key registers on. Values below 1 mean the default (one per CPU,
// capped — see kv.DefaultShards). Ignored by ListenTCP.
func WithTCPShards(n int) TCPOption {
	return func(o *tcpOptions) { o.shards = n }
}

// WithTCPDataDir makes the server durable: its WAL and snapshots live
// in dir (created if absent, one directory per server process). On
// startup the server replays the directory's records — truncating a
// torn tail left by a crash — before accepting connections, and every
// state-mutating message is fsynced (group-committed) before its reply
// leaves. Without this option the server keeps state only in memory
// and a process death is an amnesiac (Byzantine-counted) restart.
func WithTCPDataDir(dir string) TCPOption {
	return func(o *tcpOptions) { o.dataDir = dir }
}

// ListenTCPKV starts a key-value storage server on addr: one lucky
// register per key, multiplexed on one socket. Pair it with OpenKVTCP
// on the client side.
//
// The server steps its keys across a pool of shard workers
// (WithTCPShards; defaults to one per CPU), so independent keys —
// including keys from different connections — never serialize on one
// automaton pump; see tcpnet.ListenSharded for the pipeline.
func ListenTCPKV(i int, addr string, opts ...TCPOption) (*TCPServer, error) {
	var o tcpOptions
	for _, opt := range opts {
		opt(&o)
	}
	var sm *core.ServerMetrics
	if o.metrics != nil {
		sm = core.NewServerMetrics(o.metrics)
	}
	srv := kv.NewShardedServerAutomatonInstrumented(o.shards, sm)
	shards := srv.Shards()
	back, err := o.openBackend(kv.NewStorageAutomaton)
	if err != nil {
		return nil, fmt.Errorf("luckystore kv server %d storage: %w", i, err)
	}
	if back != nil {
		// Replay routes through the sharded server's single-goroutine
		// Step before any shard worker exists, then every shard writes
		// through the one backend (group-committed fsyncs).
		if _, err := storage.Recover(back, srv); err != nil {
			_ = back.Close()
			return nil, fmt.Errorf("luckystore kv server %d recovery: %w", i, err)
		}
		var dm *storage.DurableMetrics
		if o.metrics != nil {
			dm = storage.NewDurableMetrics(o.metrics)
		}
		for j, sh := range shards {
			d := storage.NewDurable(sh, back, types.ServerID(i))
			d.SetMetrics(dm)
			shards[j] = d
		}
	}
	inner, err := tcpnet.ListenSharded(types.ServerID(i), addr, shards, srv.Route(), o.serverOptions()...)
	if err != nil {
		if back != nil {
			_ = back.Close()
		}
		return nil, err
	}
	if o.metrics != nil {
		// Per-shard queue depth: the live backpressure signal, one gauge
		// per shard worker (DESIGN.md §13).
		pool := inner.Pool()
		for sh := 0; sh < pool.NumShards(); sh++ {
			idx := sh
			o.metrics.GaugeFunc("lucky_tcp_shard_queue_depth",
				"Step jobs queued per shard worker, not yet stepped.",
				func() int64 { return int64(pool.QueueLen(idx)) },
				metrics.L("shard", strconv.Itoa(idx)))
		}
	}
	return &TCPServer{inner: inner, back: back, srv: srv}, nil
}

// OpenKVTCP connects the client side of a key-value store to a TCP
// cluster of ListenTCPKV servers: one writer connection plus
// cfg.NumReaders reader connections. The returned store owns the
// connections and closes them on Close.
// A store opened with WithKVMetrics additionally instruments the TCP
// endpoints it dials (frame counters and redials, by role).
func OpenKVTCP(cfg Config, servers map[ProcID]string, opts ...KVOption) (*KVStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(servers) != cfg.S() {
		return nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	var wcm, rcm *tcpnet.ClientMetrics
	if reg := kv.MetricsRegistry(opts...); reg != nil {
		wcm = tcpnet.NewClientMetrics(reg, "writer")
		rcm = tcpnet.NewClientMetrics(reg, "reader")
	}
	writerEP, err := tcpnet.Dial(types.WriterID(), servers, clientOptions(wcm)...)
	if err != nil {
		return nil, err
	}
	readerEPs := make([]transport.Endpoint, cfg.NumReaders)
	for i := range readerEPs {
		ep, err := tcpnet.Dial(types.ReaderID(i), servers, clientOptions(rcm)...)
		if err != nil {
			_ = writerEP.Close()
			for j := 0; j < i; j++ {
				_ = readerEPs[j].Close()
			}
			return nil, err
		}
		readerEPs[i] = ep
	}
	return kv.OpenWithEndpoints(cfg, writerEP, readerEPs, opts...)
}

// clientOptions translates an optional client-metrics handle into
// tcpnet dial options.
func clientOptions(m *tcpnet.ClientMetrics) []tcpnet.ClientOption {
	if m == nil {
		return nil
	}
	return []tcpnet.ClientOption{tcpnet.WithClientMetrics(m)}
}
