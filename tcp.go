package luckystore

import (
	"fmt"
	"io"

	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/node"
	"luckystore/internal/storage"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// WireFormatVersion is the version byte of the binary wire format TCP
// frames carry (DESIGN.md §4). Peers reject frames with any other
// version, so a cluster must be upgraded together when the format
// evolves; exposing the constant lets deployment tooling check
// compatibility before rolling.
const WireFormatVersion = wire.FormatVersion

// TCPServer is one storage server listening on a real TCP socket.
type TCPServer struct {
	inner *tcpnet.Server
	back  storage.Backend // non-nil when disk-backed (WithTCPDataDir)
}

// Addr returns the listening address (host:port).
func (s *TCPServer) Addr() string { return s.inner.Addr() }

// ID returns the server's process id ("s0", "s1", …).
func (s *TCPServer) ID() ProcID { return s.inner.ID() }

// Close stops the server; to the rest of the cluster this is a crash.
// A disk-backed server closes its WAL after the listener — stepping
// has stopped by then, so the final flush+fsync captures every
// acknowledged operation.
func (s *TCPServer) Close() error {
	err := s.inner.Close()
	if s.back != nil {
		if cerr := s.back.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ListenTCP starts storage server i on addr (use "127.0.0.1:0" to pick
// a free port). A production deployment runs one of these per machine;
// cmd/luckyd wraps it as a daemon. With WithTCPDataDir the server
// recovers its register from the directory's WAL before listening and
// writes through it before acknowledging.
func ListenTCP(i int, addr string, opts ...TCPOption) (*TCPServer, error) {
	var o tcpOptions
	for _, opt := range opts {
		opt(&o)
	}
	a := core.NewServer()
	run := node.Automaton(a)
	var back storage.Backend
	if o.dataDir != "" {
		var err error
		back, err = storage.NewFile(o.dataDir, func() storage.Automaton { return core.NewServer() })
		if err != nil {
			return nil, fmt.Errorf("luckystore server %d storage: %w", i, err)
		}
		if _, err := storage.Recover(back, a); err != nil {
			_ = back.Close()
			return nil, fmt.Errorf("luckystore server %d recovery: %w", i, err)
		}
		run = storage.NewDurable(a, back, types.ServerID(i))
	}
	inner, err := tcpnet.Listen(types.ServerID(i), addr, run)
	if err != nil {
		if back != nil {
			_ = back.Close()
		}
		return nil, err
	}
	return &TCPServer{inner: inner, back: back}, nil
}

// ServerAddrs builds the address map clients need from an ordered list
// of server addresses (index i becomes server "si").
func ServerAddrs(addrs []string) map[ProcID]string {
	m := make(map[ProcID]string, len(addrs))
	for i, a := range addrs {
		m[types.ServerID(i)] = a
	}
	return m
}

// NewTCPWriter connects the writer client to a TCP cluster. The
// returned closer tears the connections down.
func NewTCPWriter(cfg Config, servers map[ProcID]string) (*Writer, io.Closer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(servers) != cfg.S() {
		return nil, nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	ep, err := tcpnet.Dial(types.WriterID(), servers)
	if err != nil {
		return nil, nil, err
	}
	return core.NewWriter(cfg, types.WriterID(), ep), ep, nil
}

// NewTCPReader connects reader client i to a TCP cluster. The returned
// closer tears the connections down.
func NewTCPReader(cfg Config, i int, servers map[ProcID]string) (*Reader, io.Closer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(servers) != cfg.S() {
		return nil, nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	id := types.ReaderID(i)
	ep, err := tcpnet.Dial(id, servers)
	if err != nil {
		return nil, nil, err
	}
	return core.NewReader(cfg, id, ep), ep, nil
}

// TCPOption configures ListenTCP and ListenTCPKV.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	shards  int
	dataDir string
}

// WithTCPShards sets how many shard workers the TCP KV server steps its
// per-key registers on. Values below 1 mean the default (one per CPU,
// capped — see kv.DefaultShards). Ignored by ListenTCP.
func WithTCPShards(n int) TCPOption {
	return func(o *tcpOptions) { o.shards = n }
}

// WithTCPDataDir makes the server durable: its WAL and snapshots live
// in dir (created if absent, one directory per server process). On
// startup the server replays the directory's records — truncating a
// torn tail left by a crash — before accepting connections, and every
// state-mutating message is fsynced (group-committed) before its reply
// leaves. Without this option the server keeps state only in memory
// and a process death is an amnesiac (Byzantine-counted) restart.
func WithTCPDataDir(dir string) TCPOption {
	return func(o *tcpOptions) { o.dataDir = dir }
}

// ListenTCPKV starts a key-value storage server on addr: one lucky
// register per key, multiplexed on one socket. Pair it with OpenKVTCP
// on the client side.
//
// The server steps its keys across a pool of shard workers
// (WithTCPShards; defaults to one per CPU), so independent keys —
// including keys from different connections — never serialize on one
// automaton pump; see tcpnet.ListenSharded for the pipeline.
func ListenTCPKV(i int, addr string, opts ...TCPOption) (*TCPServer, error) {
	var o tcpOptions
	for _, opt := range opts {
		opt(&o)
	}
	srv := kv.NewShardedServerAutomaton(o.shards)
	shards := srv.Shards()
	var back storage.Backend
	if o.dataDir != "" {
		var err error
		back, err = storage.NewFile(o.dataDir, kv.NewStorageAutomaton)
		if err != nil {
			return nil, fmt.Errorf("luckystore kv server %d storage: %w", i, err)
		}
		// Replay routes through the sharded server's single-goroutine
		// Step before any shard worker exists, then every shard writes
		// through the one backend (group-committed fsyncs).
		if _, err := storage.Recover(back, srv); err != nil {
			_ = back.Close()
			return nil, fmt.Errorf("luckystore kv server %d recovery: %w", i, err)
		}
		for j, sh := range shards {
			shards[j] = storage.NewDurable(sh, back, types.ServerID(i))
		}
	}
	inner, err := tcpnet.ListenSharded(types.ServerID(i), addr, shards, srv.Route())
	if err != nil {
		if back != nil {
			_ = back.Close()
		}
		return nil, err
	}
	return &TCPServer{inner: inner, back: back}, nil
}

// OpenKVTCP connects the client side of a key-value store to a TCP
// cluster of ListenTCPKV servers: one writer connection plus
// cfg.NumReaders reader connections. The returned store owns the
// connections and closes them on Close.
func OpenKVTCP(cfg Config, servers map[ProcID]string) (*KVStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(servers) != cfg.S() {
		return nil, fmt.Errorf("luckystore: %d server addresses for S=%d", len(servers), cfg.S())
	}
	writerEP, err := tcpnet.Dial(types.WriterID(), servers)
	if err != nil {
		return nil, err
	}
	readerEPs := make([]transport.Endpoint, cfg.NumReaders)
	for i := range readerEPs {
		ep, err := tcpnet.Dial(types.ReaderID(i), servers)
		if err != nil {
			_ = writerEP.Close()
			for j := 0; j < i; j++ {
				_ = readerEPs[j].Close()
			}
			return nil, err
		}
		readerEPs[i] = ep
	}
	return kv.OpenWithEndpoints(cfg, writerEP, readerEPs)
}
