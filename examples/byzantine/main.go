// Byzantine: run the register with its full failure budget — one
// forging Byzantine server AND one crashed server (t=2 total, b=1
// malicious) — and watch reads keep returning genuine values while the
// forged ones never surface.
package main

import (
	"fmt"
	"log"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}

	// Server s2 is malicious from the start: it acknowledges every
	// request while claiming a fabricated pair 〈9999, "forged"〉 in all
	// of its fields — the strongest structurally-valid lie.
	cluster, err := luckystore.New(cfg,
		luckystore.WithForgingServer(2, 9999, "forged"))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Crash one more server: the failure budget t=2 is now exhausted.
	cluster.CrashServer(5)
	fmt.Println("cluster: s2 forging, s5 crashed (t=2 failures, b=1 malicious)")

	for i := 1; i <= 3; i++ {
		v := luckystore.Value(fmt.Sprintf("update-%d", i))
		if err := cluster.Writer().Write(v); err != nil {
			log.Fatal(err)
		}
		wm := cluster.Writer().LastMeta()

		got, err := cluster.Reader(i % 2).Read()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("write %q (rounds=%d) → read %s\n", string(v), wm.Rounds, got)
		if got.Val == "forged" {
			log.Fatal("BUG: forged value surfaced!")
		}
	}
	fmt.Println("the forged pair never surfaced: b+1 witnesses are required for any value")
}
