// Quickstart: bring up a t=2, b=1 cluster (6 servers), write a value,
// read it back, and show that both lucky operations completed in a
// single communication round-trip.
package main

import (
	"fmt"
	"log"

	"luckystore"
)

func main() {
	// Tolerate t=2 server failures, b=1 of them Byzantine; budget the
	// fast paths as fw=1 (writes stay fast despite 1 failure) and
	// therefore fr = t−b−fw = 0.
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}
	fmt.Printf("cluster: S=%d servers, t=%d, b=%d, fw=%d, fr=%d\n",
		cfg.S(), cfg.T, cfg.B, cfg.Fw, cfg.Fr())

	cluster, err := luckystore.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("hello, robust world"); err != nil {
		log.Fatal(err)
	}
	wm := cluster.Writer().LastMeta()
	fmt.Printf("WRITE: ts=%d rounds=%d fast=%v\n", wm.TS, wm.Rounds, wm.Fast)

	got, err := cluster.Reader(0).Read()
	if err != nil {
		log.Fatal(err)
	}
	rm := cluster.Reader(0).LastMeta()
	fmt.Printf("READ:  %s rounds=%d fast=%v\n", got, rm.Rounds(), rm.Fast())

	// A second reader sees the same value — atomicity in action.
	got2, err := cluster.Reader(1).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READ (another reader): %s\n", got2)
}
