// Fastpath: observe when operations are fast (one round-trip) and what
// makes them slow — failures beyond the budget and read/write
// contention — reproducing the paper's headline behaviour end to end.
package main

import (
	"fmt"
	"log"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}
	fmt.Printf("budget: fw=%d failures for fast writes, fr=%d for fast reads (fw+fr = t−b = %d)\n\n",
		cfg.Fw, cfg.Fr(), cfg.T-cfg.B)

	cluster, err := luckystore.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	report := func(tag string) {
		wm := cluster.Writer().LastMeta()
		fmt.Printf("%-34s WRITE rounds=%d fast=%v\n", tag, wm.Rounds, wm.Fast)
	}
	reportRead := func(tag string, r *luckystore.Reader) {
		rm := r.LastMeta()
		fmt.Printf("%-34s READ  rounds=%d fast=%v (wrote back: %v)\n",
			tag, rm.Rounds(), rm.Fast(), rm.WroteBack)
	}

	// 1. No failures: everything is lucky and fast.
	must(cluster.Writer().Write("v1"))
	report("no failures:")
	_, err = cluster.Reader(0).Read()
	must(err)
	reportRead("no failures:", cluster.Reader(0))

	// 2. One crash — within the fw budget: writes stay fast.
	cluster.CrashServer(0)
	must(cluster.Writer().Write("v2"))
	report("1 crash (= fw):")

	// 3. A second crash — beyond fw: the write takes the 3-round slow
	// path, but the slow write pre-pays for the reads: they are fast
	// again via the vw fields (the Appendix A trade).
	cluster.CrashServer(1)
	must(cluster.Writer().Write("v3"))
	report("2 crashes (> fw):")
	_, err = cluster.Reader(0).Read()
	must(err)
	reportRead("2 crashes, after slow write:", cluster.Reader(0))

	got, err := cluster.Reader(1).Read()
	must(err)
	fmt.Printf("\nfinal value: %s\n", got)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
