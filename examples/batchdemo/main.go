// Batchdemo: the sharded, batched KV pipeline — PutBatch/GetBatch fan
// out across keys concurrently with the network traffic coalesced into
// batched frames, PutAsync/GetAsync expose the same pipeline as
// futures, and each server runs its per-key registers across a pool of
// shard workers (WithKVShards).
package main

import (
	"fmt"
	"log"
	"sort"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}
	store, err := luckystore.OpenKV(cfg, luckystore.WithKVShards(4))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("kv store over %d servers (t=%d, b=%d), %d shard workers per server\n\n",
		cfg.S(), cfg.T, cfg.B, store.Shards())

	// One batch put: every key written concurrently, the fan-out fused
	// into batched frames. A batch is not a transaction — each key is
	// individually atomic.
	puts := make(map[string]luckystore.Value)
	keys := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("sensor/%d", i)
		keys = append(keys, k)
		puts[k] = luckystore.Value(fmt.Sprintf("reading-%d", i*i))
	}
	if err := store.PutBatch(puts); err != nil {
		log.Fatal(err)
	}
	got, err := store.GetBatch(0, keys)
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-10s = %-14q (ts=%d)\n", k, string(got[k].Val), got[k].TS)
	}

	// Async futures: start operations, overlap with other work, join.
	pf := store.PutAsync("leader", "node-3")
	gf := store.GetAsync(1, "sensor/0")
	if err := pf.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nasync put:  ts=%d fast=%v\n", pf.Meta().TS, pf.Meta().Fast)
	v, err := gf.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async get:  %q\n", string(v.Val))

	// Unwritten keys in a batch read as the initial value ⊥.
	miss, err := store.GetBatch(1, []string{"never/written"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unwritten:  bottom=%v\n", miss["never/written"].IsBottom())

	// Batch puts keep the fault tolerance: with one server crashed
	// (within fw), every key's put still completes on the fast path.
	store.CrashServer(0)
	if err := store.PutBatch(map[string]luckystore.Value{
		"sensor/0": "post-crash-0", "sensor/1": "post-crash-1",
	}); err != nil {
		log.Fatal(err)
	}
	pm, _ := store.PutMeta("sensor/1")
	fmt.Printf("\nbatch put with a crashed server: rounds=%d fast=%v\n", pm.Rounds, pm.Fast)
}
