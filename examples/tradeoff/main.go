// Tradeoff: sweep every admissible split of the fast-path budget
// fw + fr = t − b and print the measured behaviour as a table — the
// paper's Proposition 1, live.
package main

import (
	"fmt"
	"log"

	"luckystore"
)

func main() {
	fmt.Println("Proposition 1: every split fw + fr = t − b supports fast lucky ops")
	fmt.Println()
	fmt.Printf("%-4s %-4s %-4s %-4s %-4s %-18s %-18s\n",
		"t", "b", "S", "fw", "fr", "write@fw-failures", "read@fr-failures")

	for _, tb := range [][2]int{{2, 0}, {2, 1}, {3, 1}, {3, 2}} {
		t, b := tb[0], tb[1]
		for fw := 0; fw <= t-b; fw++ {
			cfg := luckystore.Config{T: t, B: b, Fw: fw, NumReaders: 1}
			writeFast, readFast := measure(cfg)
			fmt.Printf("%-4d %-4d %-4d %-4d %-4d %-18v %-18v\n",
				t, b, cfg.S(), fw, cfg.Fr(), writeFast, readFast)
		}
	}
}

// measure crashes fw servers, writes, crashes fr more, reads; reports
// whether each lucky operation used its one-round fast path.
func measure(cfg luckystore.Config) (writeFast, readFast bool) {
	cluster, err := luckystore.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	crashed := 0
	for ; crashed < cfg.Fw; crashed++ {
		cluster.CrashServer(crashed)
	}
	if err := cluster.Writer().Write("payload"); err != nil {
		log.Fatal(err)
	}
	writeFast = cluster.Writer().LastMeta().Fast

	for ; crashed < cfg.Fw+cfg.Fr(); crashed++ {
		cluster.CrashServer(crashed)
	}
	if _, err := cluster.Reader(0).Read(); err != nil {
		log.Fatal(err)
	}
	readFast = cluster.Reader(0).LastMeta().Fast()
	return writeFast, readFast
}
