// Kvtcp: the key-value store on real TCP sockets — three luckyd
// -kv equivalent servers in-process, each stepping its keys on a pool
// of shard workers, an OpenKVTCP client pushing batched multi-key
// rounds, and a mid-run server crash that the store rides out.
package main

import (
	"fmt"
	"log"
	"time"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 100 * time.Millisecond}

	// Bring up S = 3 sharded KV servers on ephemeral localhost ports —
	// the in-process equivalent of `luckyd -kv -shards 4` per machine.
	servers := make([]*luckystore.TCPServer, cfg.S())
	addrs := make([]string, cfg.S())
	for i := range servers {
		srv, err := luckystore.ListenTCPKV(i, "127.0.0.1:0", luckystore.WithTCPShards(4))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		addrs[i] = srv.Addr()
		fmt.Printf("kv server %s listening on %s\n", srv.ID(), srv.Addr())
	}

	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(addrs))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// One batched round trip writes eight keys; the client coalesces the
	// fan-out into batch frames and each server fans the keys out across
	// its shard workers.
	puts := make(map[string]luckystore.Value, 8)
	for i := 0; i < 8; i++ {
		puts[fmt.Sprintf("user:%d", i)] = luckystore.Value(fmt.Sprintf("profile-%d", i))
	}
	if err := store.PutBatch(puts); err != nil {
		log.Fatal(err)
	}
	meta, _ := store.PutMeta("user:0")
	fmt.Printf("\nPutBatch over TCP: %d keys, fast=%v\n", len(puts), meta.Fast)

	got, err := store.GetBatch(0, []string{"user:0", "user:3", "user:7"})
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range got {
		fmt.Printf("GetBatch over TCP: %s = %s (ts=%d)\n", k, v.Val, v.TS)
	}

	// Crash one server: a closed TCP server is a crashed server, within
	// the t=1 budget the store keeps serving every key.
	fmt.Printf("\ncrashing %s …\n", servers[2].ID())
	servers[2].Close()
	if err := store.Put("user:0", "profile-0-v2"); err != nil {
		log.Fatal(err)
	}
	v, err := store.Get(0, "user:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash: user:0 = %s (ts=%d)\n", v.Val, v.TS)
}
