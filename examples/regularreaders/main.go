// Regularreaders: when readers cannot be trusted, the atomic variant is
// corruptible — a malicious reader can "write back" a value that was
// never written. The Appendix D regular variant closes the hole by
// having servers ignore reader write-backs, and as a bonus lifts the
// fast-path budgets to their maxima (fw = t−b, fr = t).
package main

import (
	"fmt"
	"log"

	"luckystore"
)

func main() {
	cfg := luckystore.RegularConfig{T: 2, B: 1, NumReaders: 2}
	fmt.Printf("regular variant: S=%d, fast writes despite %d failures, fast reads despite %d\n\n",
		cfg.S(), cfg.Fw(), cfg.Fr())

	cluster, err := luckystore.NewRegular(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("genuine"); err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s (rounds=%d)\n", got, cluster.Reader(0).LastMeta().Rounds())

	// Push the failure budget to the regular variant's maximum:
	// fr = t = 2 crashed servers, and reads are STILL one round-trip.
	cluster.CrashServer(0)
	cluster.CrashServer(1)
	got, err = cluster.Reader(1).Read()
	if err != nil {
		log.Fatal(err)
	}
	rm := cluster.Reader(1).LastMeta()
	fmt.Printf("read with t=2 crashed servers: %s (rounds=%d, fast=%v)\n",
		got, rm.Rounds(), rm.Fast())

	fmt.Println("\nservers in this variant ignore reader write-backs entirely,")
	fmt.Println("so a Byzantine reader cannot inject values (see experiment E9).")
	fmt.Println("price: overlapping reads by different readers may observe a")
	fmt.Println("new/old inversion — regular, not atomic, semantics.")
}
