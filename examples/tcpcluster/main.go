// Tcpcluster: run the register over real TCP sockets on localhost —
// six luckyd-equivalent servers in-process, a writer and a reader
// connected through the same client code cmd/luckyctl uses, plus a
// mid-run server crash.
package main

import (
	"fmt"
	"log"
	"time"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1,
		RoundTimeout: 100 * time.Millisecond}

	// Bring up S = 6 TCP servers on ephemeral localhost ports.
	servers := make([]*luckystore.TCPServer, cfg.S())
	addrs := make([]string, cfg.S())
	for i := range servers {
		srv, err := luckystore.ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		addrs[i] = srv.Addr()
		fmt.Printf("server %s listening on %s\n", srv.ID(), srv.Addr())
	}
	addrMap := luckystore.ServerAddrs(addrs)

	writer, wClose, err := luckystore.NewTCPWriter(cfg, addrMap)
	if err != nil {
		log.Fatal(err)
	}
	defer wClose.Close()
	reader, rClose, err := luckystore.NewTCPReader(cfg, 0, addrMap)
	if err != nil {
		log.Fatal(err)
	}
	defer rClose.Close()

	if err := writer.Write("over real sockets"); err != nil {
		log.Fatal(err)
	}
	wm := writer.LastMeta()
	fmt.Printf("\nWRITE over TCP: ts=%d rounds=%d fast=%v\n", wm.TS, wm.Rounds, wm.Fast)

	got, err := reader.Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READ over TCP:  %s rounds=%d\n", got, reader.LastMeta().Rounds())

	// Crash one server: within the fw budget, writes stay fast.
	fmt.Printf("\ncrashing %s …\n", servers[3].ID())
	servers[3].Close()
	if err := writer.Write("still available"); err != nil {
		log.Fatal(err)
	}
	wm = writer.LastMeta()
	fmt.Printf("WRITE after crash: ts=%d rounds=%d fast=%v\n", wm.TS, wm.Rounds, wm.Fast)
	got, err = reader.Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("READ after crash:  %s\n", got)
}
