// Kvstore: the multi-register layer — every key is its own independent
// atomic register, multiplexed over a single set of 2t+b+1 servers.
// Writes to different keys proceed concurrently; each key keeps the
// one-round lucky fast path and the full Byzantine tolerance.
package main

import (
	"fmt"
	"log"
	"sync"

	"luckystore"
)

func main() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}
	store, err := luckystore.OpenKV(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("kv store over %d servers (t=%d, b=%d)\n\n", cfg.S(), cfg.T, cfg.B)

	// Concurrent writers to independent keys.
	keys := []string{"users/alice", "users/bob", "config/flags", "leader"}
	var wg sync.WaitGroup
	for i, key := range keys {
		i, key := i, key
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 1; v <= 3; v++ {
				if err := store.Put(key, luckystore.Value(fmt.Sprintf("%s-v%d", key, v))); err != nil {
					log.Printf("put %s: %v", key, err)
					return
				}
			}
			_ = i
		}()
	}
	wg.Wait()

	for _, key := range keys {
		got, err := store.Get(0, key)
		if err != nil {
			log.Fatal(err)
		}
		gm, _ := store.GetMeta(0, key)
		fmt.Printf("%-14s = %-22q (ts=%d, rounds=%d)\n", key, string(got.Val), got.TS, gm.Rounds())
	}

	// A key never written reads as the initial value.
	got, err := store.Get(1, "missing")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunwritten key: bottom=%v\n", got.IsBottom())

	// One crashed server: within the fast-write budget, Puts stay one
	// round-trip.
	store.CrashServer(5)
	if err := store.Put("leader", "node-7"); err != nil {
		log.Fatal(err)
	}
	pm, _ := store.PutMeta("leader")
	fmt.Printf("put after crash: rounds=%d fast=%v\n", pm.Rounds, pm.Fast)
}
