package luckystore

import (
	"luckystore/internal/core"
	"luckystore/internal/kv"
	"luckystore/internal/metrics"
)

// KVStore is the multi-register layer: a key-value store in which every
// key is an independent SWMR atomic register of the lucky protocol,
// multiplexed over one set of 2t+b+1 servers. Each key keeps the full
// per-register guarantees — atomicity, wait-freedom, one-round lucky
// Puts and Gets — and the composition is linearizable across keys.
//
// The single-writer constraint carries over per key: this process owns
// the writer role for every key (Put); Gets go through one of the
// NumReaders reader clients.
//
// Beyond blocking Put/Get, the store exposes the sharded engine
// directly: PutAsync/GetAsync return futures, and PutBatch/GetBatch fan
// out across keys concurrently with the network traffic coalesced into
// batched frames. Each server runs its per-key registers across a pool
// of shard workers (see WithKVShards).
type KVStore = kv.Store

// KVMeta aliases for inspecting KV operation complexity.
type (
	// PutMeta is the round-trip metadata of a Put (see KVStore.PutMeta).
	PutMeta = core.WriteMeta
	// GetMeta is the round-trip metadata of a Get (see KVStore.GetMeta).
	GetMeta = core.ReadMeta
)

// Async KV futures (see KVStore.PutAsync and KVStore.GetAsync).
type (
	// PutFuture is a pending asynchronous Put.
	PutFuture = kv.PutFuture
	// GetFuture is a pending asynchronous Get.
	GetFuture = kv.GetFuture
)

// KVOption configures OpenKV.
type KVOption = kv.Option

// WithKVShards sets how many shard workers each KV server runs its
// per-key registers on; the default scales with GOMAXPROCS.
func WithKVShards(n int) KVOption { return kv.WithShards(n) }

// MetricsRegistry collects live instruments — counters, gauges, and
// latency histograms — and renders them in Prometheus text format (see
// internal/metrics). One registry is shared by every layer of a store:
// protocol round counts, shard queue depths, WAL fsync latency, frame
// traffic.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry ready to be passed to
// WithKVMetrics or WithTCPMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithKVMetrics threads live instrumentation through every layer of the
// store: core writer/reader path counters and latency histograms,
// per-key-class Put/Get latency, per-server queue-depth gauges, WAL
// metrics on durable stores, and coalescer batch widths. The zero cost
// when absent is preserved — uninstrumented stores skip every observe
// with a nil check.
func WithKVMetrics(reg *MetricsRegistry) KVOption { return kv.WithMetrics(reg) }

// OpenKV builds and starts a key-value store on an in-memory network.
func OpenKV(cfg Config, opts ...KVOption) (*KVStore, error) { return kv.Open(cfg, opts...) }
