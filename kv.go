package luckystore

import (
	"luckystore/internal/core"
	"luckystore/internal/kv"
)

// KVStore is the multi-register layer: a key-value store in which every
// key is an independent SWMR atomic register of the lucky protocol,
// multiplexed over one set of 2t+b+1 servers. Each key keeps the full
// per-register guarantees — atomicity, wait-freedom, one-round lucky
// Puts and Gets — and the composition is linearizable across keys.
//
// The single-writer constraint carries over per key: this process owns
// the writer role for every key (Put); Gets go through one of the
// NumReaders reader clients.
type KVStore = kv.Store

// KVMeta aliases for inspecting KV operation complexity.
type (
	// PutMeta is the round-trip metadata of a Put (see KVStore.PutMeta).
	PutMeta = core.WriteMeta
	// GetMeta is the round-trip metadata of a Get (see KVStore.GetMeta).
	GetMeta = core.ReadMeta
)

// OpenKV builds and starts a key-value store on an in-memory network.
func OpenKV(cfg Config) (*KVStore, error) { return kv.Open(cfg) }
