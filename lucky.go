package luckystore

import (
	"fmt"

	"luckystore/internal/core"
	"luckystore/internal/fault"
	"luckystore/internal/types"
)

// Re-exported data model. A Tagged couples a value with the logical
// timestamp the single writer assigned to it; timestamp 0 is the
// initial value ⊥.
type (
	// Value is the register payload.
	Value = types.Value
	// TS is a logical timestamp.
	TS = types.TS
	// Tagged is a timestamp–value pair.
	Tagged = types.Tagged
	// ProcID identifies a process.
	ProcID = types.ProcID
)

// Bottom returns the register's initial pair 〈0, ⊥〉.
func Bottom() Tagged { return types.Bottom() }

// Configuration and cluster types of the core protocol.
type (
	// Config carries the resilience parameters: T failures tolerated, B
	// of them Byzantine, and the fast-write budget Fw (the fast-read
	// budget is Fr() = T − B − Fw).
	Config = core.Config
	// Cluster is a running deployment: S server automata plus clients.
	Cluster = core.Cluster
	// Writer is the single writer client.
	Writer = core.Writer
	// Reader is a reader client.
	Reader = core.Reader
	// WriteMeta reports the round-trip complexity of the last WRITE.
	WriteMeta = core.WriteMeta
	// ReadMeta reports the round-trip complexity of the last READ.
	ReadMeta = core.ReadMeta
	// Option configures a cluster.
	Option = core.ClusterOption
)

// Sentinel errors re-exported for errors.Is checks.
var (
	// ErrBottomValue rejects WRITE("") — ⊥ is not a valid input.
	ErrBottomValue = core.ErrBottomValue
	// ErrOpTimeout reports a violated failure assumption (more than t
	// servers unresponsive).
	ErrOpTimeout = core.ErrOpTimeout
)

// New builds and starts a cluster on an in-memory network.
func New(cfg Config, opts ...Option) (*Cluster, error) {
	return core.NewCluster(cfg, opts...)
}

// WithCrashedServer starts the cluster with server i already crashed.
func WithCrashedServer(i int) Option { return core.WithCrashedServer(i) }

// WithMuteServer makes server i Byzantine-mute: it never answers.
// Counts against both the Byzantine budget b and actual failures.
func WithMuteServer(i int) Option {
	return core.WithServerAutomaton(i, fault.Mute())
}

// WithForgingServer makes server i Byzantine: it acknowledges every
// request while claiming a fabricated pair 〈ts, val〉 — the canonical
// attack of the paper's upper-bound proof. The protocol masks it as
// long as at most B servers are malicious.
func WithForgingServer(i int, ts TS, val Value) Option {
	return core.WithServerAutomaton(i, fault.ForgeHighTS(ts, val))
}

// WithStaleServer makes server i Byzantine: it acknowledges everything
// but always reports the initial state, trying to drag readers back to
// ⊥.
func WithStaleServer(i int) Option {
	return core.WithServerAutomaton(i, fault.StaleBottom())
}

// WithRandomLiarServer makes server i Byzantine with reproducible
// pseudo-random lies.
func WithRandomLiarServer(i int, seed int64) Option {
	return core.WithServerAutomaton(i, fault.RandomLiar(seed))
}

// ServerID returns the ProcID of the i-th server (useful with the TCP
// deployment helpers).
func ServerID(i int) ProcID { return types.ServerID(i) }

// ValidateConfig reports whether the resilience parameters are
// admissible (0 ≤ b ≤ t, 0 ≤ fw ≤ t−b).
func ValidateConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("luckystore: %w", err)
	}
	return nil
}
