package luckystore_test

// One benchmark per reproduced table/figure (wrapping the E1–E14
// experiment drivers, the same code cmd/luckybench runs), plus
// operation-level micro-benchmarks for the core protocol, the Appendix
// C/D variants and the ABD baseline.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report wall-clock per full experiment; the
// micro-benchmarks report per-operation cost on the in-memory network
// (round-trip *counts* are asserted in the test suite; these measure
// constant factors).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"luckystore"

	"luckystore/internal/abd"
	"luckystore/internal/core"
	"luckystore/internal/experiments"
	"luckystore/internal/kv"
	"luckystore/internal/regular"
	"luckystore/internal/ring"
	"luckystore/internal/router"
	"luckystore/internal/simnet"
	"luckystore/internal/storage"
	"luckystore/internal/tcpnet"
	"luckystore/internal/transport"
	"luckystore/internal/twophase"
	"luckystore/internal/types"
	"luckystore/internal/wire"
)

// benchCfg keeps the round-1 timer small so slow paths do not dominate
// benchmark wall time.
func benchCfg() luckystore.Config {
	return luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 2 * time.Millisecond}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s shape diverged from the paper:\n%s", id, res)
		}
	}
}

// --- One benchmark per experiment (table/figure) -------------------

func BenchmarkE1FastWrites(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2FastReads(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3SlowPaths(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Tradeoff(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5UpperBound(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6TradingReads(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7WriteBound(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8TwoPhase(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Regular(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Ghost(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Baselines(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12Latency(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13MultiWriter(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14MWReads(b *testing.B)     { benchExperiment(b, "E14") }

// --- Core protocol micro-benchmarks --------------------------------

func BenchmarkLuckyWrite(b *testing.B) {
	cluster, err := luckystore.New(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Writer().Write(luckystore.Value(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !cluster.Writer().LastMeta().Fast {
		b.Fatal("benchmarked write was not on the fast path")
	}
}

func BenchmarkLuckyRead(b *testing.B) {
	cluster, err := luckystore.New(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write("v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Reader(0).Read(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !cluster.Reader(0).LastMeta().Fast() {
		b.Fatal("benchmarked read was not on the fast path")
	}
}

// BenchmarkSlowWrite measures the 3-round write path (fw+1 failures).
// The round-1 synchrony timer dominates: this is the price of missing
// the fast quorum.
func BenchmarkSlowWrite(b *testing.B) {
	cluster, err := luckystore.New(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cluster.CrashServer(0)
	cluster.CrashServer(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Writer().Write(luckystore.Value(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cluster.Writer().LastMeta().Fast {
		b.Fatal("benchmarked write unexpectedly fast")
	}
}

// BenchmarkReadWithByzantineServer shows that a forging Byzantine
// server does not knock the read off its fast path.
func BenchmarkReadWithByzantineServer(b *testing.B) {
	cluster, err := luckystore.New(benchCfg(),
		luckystore.WithForgingServer(3, 99999, "forged"))
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write("v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cluster.Reader(0).Read()
		if err != nil {
			b.Fatal(err)
		}
		if got.Val == "forged" {
			b.Fatal("forged value returned")
		}
	}
}

func BenchmarkWriteLargeValue(b *testing.B) {
	cluster, err := luckystore.New(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	payload := luckystore.Value(string(make([]byte, 16<<10)))
	b.SetBytes(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cluster.Writer().Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Variant and baseline micro-benchmarks -------------------------

func BenchmarkTwoPhaseWrite(b *testing.B) {
	c, err := twophase.NewCluster(twophase.Config{T: 2, B: 1, Fr: 1, NumReaders: 1,
		RoundTimeout: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Writer().Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoPhaseRead(b *testing.B) {
	c, err := twophase.NewCluster(twophase.Config{T: 2, B: 1, Fr: 1, NumReaders: 1,
		RoundTimeout: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegularWrite(b *testing.B) {
	c, err := regular.NewCluster(regular.Config{T: 2, B: 1, NumReaders: 1,
		RoundTimeout: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Writer().Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegularRead(b *testing.B) {
	c, err := regular.NewCluster(regular.Config{T: 2, B: 1, NumReaders: 1,
		RoundTimeout: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABDWrite(b *testing.B) {
	c, err := abd.NewCluster(abd.Config{T: 2, NumReaders: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Writer().Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABDRead(b *testing.B) {
	c, err := abd.NewCluster(abd.Config{T: 2, NumReaders: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reader(0).Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- KV engine benchmarks -------------------------------------------

// BenchmarkKVShardScaling measures concurrent multi-key Put throughput
// against the per-server shard worker count: the sharded engine's whole
// point is that independent keys stop serializing on one automaton
// pump, so throughput should grow from 1 shard to 4 and 16.
func BenchmarkKVShardScaling(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
				RoundTimeout: 50 * time.Millisecond}
			st, err := luckystore.OpenKV(cfg, luckystore.WithKVShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var nextKey atomic.Int64
			b.SetParallelism(4) // 4×GOMAXPROCS concurrent per-key writers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				key := fmt.Sprintf("key-%d", nextKey.Add(1))
				i := 0
				for pb.Next() {
					i++
					if err := st.Put(key, luckystore.Value(fmt.Sprintf("v%d", i))); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

const benchBatchKeys = 32

// BenchmarkPutLooped is the baseline PutBatch is measured against: the
// same keys written back-to-back through the blocking API.
func BenchmarkPutLooped(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	st, err := luckystore.OpenKV(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	keys := make([]string, benchBatchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := luckystore.Value(fmt.Sprintf("v%d", i))
		for _, k := range keys {
			if err := st.Put(k, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
}

// BenchmarkDurabilityModes is experiment E15: the cost of the WAL, by
// fsync policy, on the simnet KV deployment. "none" is the in-memory
// seed behavior (no storage at all); "memory" pays the record encode +
// arena copy but no I/O; the file modes add a real log with no fsync,
// an fsync per commit, and the group-commit batching the durable
// deployments actually run. puts/s is the headline; allocs/op is the
// hot-path contract (file modes must track "memory").
func BenchmarkDurabilityModes(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	modes := []struct {
		name string
		prov func(b *testing.B) storage.Provider
	}{
		{"none", func(*testing.B) storage.Provider { return nil }},
		{"memory", func(*testing.B) storage.Provider {
			return storage.NewMemProvider(kv.NewStorageAutomaton)
		}},
		{"file-nosync", func(b *testing.B) storage.Provider {
			return storage.NewDirProvider(b.TempDir(), kv.NewStorageAutomaton,
				storage.WithSyncMode(storage.SyncNone))
		}},
		{"file-sync-each", func(b *testing.B) storage.Provider {
			return storage.NewDirProvider(b.TempDir(), kv.NewStorageAutomaton,
				storage.WithSyncMode(storage.SyncEach))
		}},
		{"file-group-commit", func(b *testing.B) storage.Provider {
			return storage.NewDirProvider(b.TempDir(), kv.NewStorageAutomaton,
				storage.WithSyncMode(storage.SyncBatched))
		}},
	}
	keys := make([]string, benchBatchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			opts := []kv.Option{kv.WithShards(2)}
			if p := mode.prov(b); p != nil {
				opts = append(opts, kv.WithStorage(p))
			}
			st, err := kv.Open(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			for _, k := range keys { // warm every key's register and WAL buffers
				if err := st.Put(k, "warm"); err != nil {
					b.Fatal(err)
				}
			}
			// PutBatch fans the keys out concurrently across the shard
			// workers, so the file modes have concurrent committers —
			// the traffic shape group-commit exists for.
			batch := make(map[string]types.Value, len(keys))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val := types.Value(fmt.Sprintf("v%d", i))
				for _, k := range keys {
					batch[k] = val
				}
				if err := st.PutBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
		})
	}
}

// BenchmarkPutBatch writes the same 32 keys per iteration through the
// concurrent batch API, with the fan-out coalesced into batched frames.
func BenchmarkPutBatch(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	st, err := luckystore.OpenKV(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		puts := make(map[string]luckystore.Value, benchBatchKeys)
		val := luckystore.Value(fmt.Sprintf("v%d", i))
		for k := 0; k < benchBatchKeys; k++ {
			puts[fmt.Sprintf("key-%d", k)] = val
		}
		if err := st.PutBatch(puts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
}

// benchDelayedStore opens a KV store whose network charges a per-hop
// delivery delay, modeling a real network instead of the free in-memory
// one: sequential round trips now cost wall-clock time, which is what
// the pipelined batch APIs eliminate.
func benchDelayedStore(b *testing.B) *kv.Store {
	b.Helper()
	st, err := kv.Open(core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond},
		kv.WithSimOptions(simnet.WithDefaultDelay(200*time.Microsecond)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(st.Close)
	return st
}

// BenchmarkPutLoopedDelayed pays one full round trip per key in
// sequence — the baseline cost of the blocking API over a network with
// latency.
func BenchmarkPutLoopedDelayed(b *testing.B) {
	st := benchDelayedStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := types.Value(fmt.Sprintf("v%d", i))
		for k := 0; k < benchBatchKeys; k++ {
			if err := st.Put(fmt.Sprintf("key-%d", k), val); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
}

// BenchmarkPutBatchDelayed overlaps the same round trips: all keys'
// messages are in flight together (and coalesced into batch frames), so
// the batch pays roughly one round-trip latency instead of 32.
func BenchmarkPutBatchDelayed(b *testing.B) {
	st := benchDelayedStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		puts := make(map[string]types.Value, benchBatchKeys)
		val := types.Value(fmt.Sprintf("v%d", i))
		for k := 0; k < benchBatchKeys; k++ {
			puts[fmt.Sprintf("key-%d", k)] = val
		}
		if err := st.PutBatch(puts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
}

// BenchmarkGetBatch reads 32 preloaded keys per iteration through the
// concurrent batch API.
func BenchmarkGetBatch(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	st, err := luckystore.OpenKV(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	keys := make([]string, benchBatchKeys)
	puts := make(map[string]luckystore.Value, benchBatchKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		puts[keys[i]] = "v"
	}
	if err := st.PutBatch(puts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := st.GetBatch(0, keys)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != benchBatchKeys {
			b.Fatalf("GetBatch returned %d values", len(got))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "gets/s")
}

// --- Loopback-TCP KV benchmarks -------------------------------------

// benchTCPKVCluster starts S KV servers on loopback TCP — serialized
// (the pre-sharding path: every step behind one global mutex, via
// tcpnet.Listen) or sharded (ListenTCPKV's pipeline) — plus a client
// store dialed to them.
func benchTCPKVCluster(b *testing.B, cfg luckystore.Config, shards int) *luckystore.KVStore {
	b.Helper()
	addrs := make([]string, cfg.S())
	for i := range addrs {
		if shards == 0 {
			srv, err := tcpnet.Listen(types.ServerID(i), "127.0.0.1:0", kv.NewServerAutomaton())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			addrs[i] = srv.Addr()
		} else {
			srv, err := luckystore.ListenTCPKV(i, "127.0.0.1:0", luckystore.WithTCPShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			addrs[i] = srv.Addr()
		}
	}
	st, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(addrs))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(st.Close)
	return st
}

// BenchmarkTCPKVStepping measures concurrent multi-key Put throughput
// over real loopback sockets: the serialized variant is the seed
// deployment (one mutex serializes every automaton step across all
// connections and keys), the sharded variants step independent keys on
// parallel shard workers. This is the deployment-level twin of
// BenchmarkKVShardScaling — gains need GOMAXPROCS > 1; on one core it
// bounds the pipeline's overhead instead.
func BenchmarkTCPKVStepping(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 30 * time.Second}
	for _, v := range []struct {
		name   string
		shards int
	}{
		{"serialized", 0},
		{"sharded=4", 4},
		{"sharded=16", 16},
	} {
		b.Run(v.name, func(b *testing.B) {
			st := benchTCPKVCluster(b, cfg, v.shards)
			var nextKey atomic.Int64
			b.SetParallelism(4) // 4×GOMAXPROCS concurrent per-key writers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				key := fmt.Sprintf("key-%d", nextKey.Add(1))
				i := 0
				for pb.Next() {
					i++
					if err := st.Put(key, luckystore.Value(fmt.Sprintf("v%d", i))); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/s")
		})
	}
}

// BenchmarkTCPKVPutBatch pushes batched multi-key rounds through the
// sharded TCP pipeline: each iteration is one PutBatch whose fan-out
// coalesces into batch frames and fans out across shard workers.
func BenchmarkTCPKVPutBatch(b *testing.B) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 30 * time.Second}
	st := benchTCPKVCluster(b, cfg, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		puts := make(map[string]luckystore.Value, benchBatchKeys)
		val := luckystore.Value(fmt.Sprintf("v%d", i))
		for k := 0; k < benchBatchKeys; k++ {
			puts[fmt.Sprintf("key-%d", k)] = val
		}
		if err := st.PutBatch(puts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*benchBatchKeys)/b.Elapsed().Seconds(), "puts/s")
}

// --- Multi-writer fast-path benchmarks ------------------------------

// benchMWStores opens a KV deployment with the given number of writer
// identities — on the in-memory simnet or over loopback TCP — and
// returns one client store per identity (index 0 is the primary).
func benchMWStores(b *testing.B, writers int, tcp bool) []*kv.Store {
	b.Helper()
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 30 * time.Second}
	if !tcp {
		var opts []kv.Option
		if writers > 1 {
			opts = append(opts, kv.WithContenders(writers-1))
		}
		st, err := kv.Open(cfg, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(st.Close)
		stores := []*kv.Store{st}
		for k := 1; k < writers; k++ {
			ct, err := st.OpenContender(k)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(ct.Close)
			stores = append(stores, ct)
		}
		return stores
	}
	if writers > 1 {
		cfg.Writers = writers
	}
	m := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		auto := kv.NewShardedServerAutomaton(4)
		srv, err := tcpnet.ListenSharded(types.ServerID(i), "127.0.0.1:0", auto.Shards(), auto.Route())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		m[types.ServerID(i)] = srv.Addr()
	}
	stores := make([]*kv.Store, writers)
	for k := 0; k < writers; k++ {
		wid := types.WriterIDN(k)
		wep, err := tcpnet.Dial(wid, m)
		if err != nil {
			b.Fatal(err)
		}
		base := k * cfg.NumReaders
		reps := make([]transport.Endpoint, cfg.NumReaders)
		for i := range reps {
			if reps[i], err = tcpnet.Dial(types.ReaderID(base+i), m); err != nil {
				b.Fatal(err)
			}
		}
		st, err := kv.OpenWithEndpoints(cfg, wep, reps,
			kv.WithWriterID(wid), kv.WithReaderBase(base))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(st.Close)
		stores[k] = st
	}
	return stores
}

// BenchmarkMWWriteFastPath measures hot-key Put throughput by writer
// contention, on the in-memory network and over loopback TCP
// (BENCH_mw.json in CI, both GOMAXPROCS legs). sw-baseline is the
// published single-writer Fig. 1 path; uncontended opens a second
// identity but writes only through the primary, so every steady-state
// put rides the speculative one-round fast path (DESIGN.md §12) and
// should track the baseline — the query-elision claim, priced.
// contenders=2/4 race that many identities on the one key, where NACK
// flips and query rounds price real contention.
func BenchmarkMWWriteFastPath(b *testing.B) {
	for _, tcp := range []bool{false, true} {
		netName := "simnet"
		if tcp {
			netName = "tcp"
		}
		for _, v := range []struct {
			name            string
			writers, active int
		}{
			{"sw-baseline", 1, 1},
			{"uncontended", 2, 1},
			{"contenders=2", 2, 2},
			{"contenders=4", 4, 4},
		} {
			b.Run(netName+"/"+v.name, func(b *testing.B) {
				stores := benchMWStores(b, v.writers, tcp)
				const key = "hot"
				for w := 0; w < v.active; w++ { // warm caches; spec engages
					for i := 0; i < 64; i++ {
						if err := stores[w].Put(key, "warm"); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < v.active; w++ {
					n := b.N / v.active
					if w == 0 {
						n += b.N % v.active
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if err := stores[w].Put(key, types.Value(fmt.Sprintf("w%d.v%d", w, i))); err != nil {
								b.Error(err)
								return
							}
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/s")
			})
		}
	}
}

// --- Router scale-out benchmarks ------------------------------------

// benchRouterCluster opens one cluster's kv store for the router fleet:
// an in-memory simnet cluster, or S sharded servers on loopback TCP
// with a dialed client store. The router takes ownership and closes it.
func benchRouterCluster(b *testing.B, cfg core.Config, tcp bool) *kv.Store {
	b.Helper()
	if !tcp {
		st, err := kv.Open(cfg, kv.WithShards(4))
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	m := make(map[types.ProcID]string, cfg.S())
	for i := 0; i < cfg.S(); i++ {
		auto := kv.NewShardedServerAutomaton(4)
		srv, err := tcpnet.ListenSharded(types.ServerID(i), "127.0.0.1:0", auto.Shards(), auto.Route())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		m[types.ServerID(i)] = srv.Addr()
	}
	wep, err := tcpnet.Dial(types.WriterID(), m)
	if err != nil {
		b.Fatal(err)
	}
	reps := make([]transport.Endpoint, cfg.NumReaders)
	for i := range reps {
		if reps[i], err = tcpnet.Dial(types.ReaderID(i), m); err != nil {
			b.Fatal(err)
		}
	}
	st, err := kv.OpenWithEndpoints(cfg, wep, reps)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkRouterClusterScaling measures aggregate concurrent Put
// throughput as independent register clusters are added behind one
// consistent-hash router. Each cluster is a full S-server deployment
// with its own network, so clusters share nothing but the client:
// aggregate puts/s should grow with the fleet when GOMAXPROCS > 1 (on
// one core the run bounds the routing layer's overhead instead). The
// tcp variants run the same fleet over real loopback sockets.
func BenchmarkRouterClusterScaling(b *testing.B) {
	cfg := core.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 30 * time.Second}
	for _, tcp := range []bool{false, true} {
		netName := "simnet"
		if tcp {
			netName = "tcp"
		}
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/clusters=%d", netName, n), func(b *testing.B) {
				backends := make(map[ring.ClusterID]router.Backend, n)
				for i := 0; i < n; i++ {
					backends[ring.ID(i)] = benchRouterCluster(b, cfg, tcp)
				}
				r, err := router.New(router.Options{Seed: 1, Readers: cfg.NumReaders}, backends)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { _ = r.Close() })
				var nextKey atomic.Int64
				b.SetParallelism(4) // 4×GOMAXPROCS concurrent per-key writers
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					key := fmt.Sprintf("key-%d", nextKey.Add(1))
					i := 0
					for pb.Next() {
						i++
						if _, err := r.Put(key, types.Value(fmt.Sprintf("v%d", i))); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/s")
			})
		}
	}
}

// --- Component micro-benchmarks -------------------------------------

func BenchmarkFrameEncodeDecode(b *testing.B) {
	env := wire.Envelope{
		From: types.ServerID(3), To: types.ReaderID(0),
		Msg: wire.ReadAck{
			TSR: 7, Round: 1,
			PW: types.Tagged{TS: 9, Val: "payload-value"},
			W:  types.Tagged{TS: 8, Val: "older-value"},
			VW: types.Tagged{TS: 7, Val: "oldest"},
		},
	}
	var buf writableBuffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.EncodeFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewSelect(b *testing.B) {
	cfg := core.Config{T: 2, B: 1, Fw: 1}
	c := types.Tagged{TS: 40, Val: "current"}
	old := types.Tagged{TS: 39, Val: "previous"}
	view := core.NewView(cfg, 1)
	for i := 0; i < cfg.S(); i++ {
		view.Update(types.ServerID(i), 1, c, old, old, types.InitialFrozen())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := view.Select(); !ok {
			b.Fatal("no candidate")
		}
	}
}

// writableBuffer is a minimal growable read/write buffer for the codec
// benchmark (avoids bytes.Buffer's interface indirection noise).
type writableBuffer struct {
	data []byte
	off  int
}

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writableBuffer) Read(p []byte) (int, error) {
	n := copy(p, w.data[w.off:])
	w.off += n
	if n == 0 {
		return 0, fmt.Errorf("EOF")
	}
	return n, nil
}

func (w *writableBuffer) Reset() { w.data, w.off = w.data[:0], 0 }
