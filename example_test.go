package luckystore_test

import (
	"fmt"
	"log"

	"luckystore"
)

// The minimal lifecycle: configure resilience, write, read.
func Example() {
	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 1}
	cluster, err := luckystore.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("hello"); err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(got.TS, got.Val)
	// Output: 1 hello
}

// Lucky operations complete in one communication round-trip; the
// metadata shows it.
func Example_fastPath() {
	cluster, err := luckystore.New(luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("v"); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Reader(0).Read(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write rounds:", cluster.Writer().LastMeta().Rounds)
	fmt.Println("read rounds: ", cluster.Reader(0).LastMeta().Rounds())
	// Output:
	// write rounds: 1
	// read rounds:  1
}

// A Byzantine server forging a high-timestamp value cannot defeat the
// b+1 witness thresholds: reads keep returning genuine values.
func Example_byzantine() {
	cluster, err := luckystore.New(
		luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 1},
		luckystore.WithForgingServer(0, 99999, "forged"),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("genuine"); err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(got.Val)
	// Output: genuine
}

// The Appendix D regular variant keeps reads one round-trip through the
// maximal failure budget fr = t.
func Example_regularVariant() {
	cluster, err := luckystore.NewRegular(luckystore.RegularConfig{T: 2, B: 1, NumReaders: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("v"); err != nil {
		log.Fatal(err)
	}
	cluster.CrashServer(0)
	cluster.CrashServer(1) // fr = t = 2 failures
	got, err := cluster.Reader(0).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(got.Val, cluster.Reader(0).LastMeta().Rounds())
	// Output: v 1
}
