package luckystore_test

// End-to-end coverage of the TCP KV deployment: ListenTCPKV×S sharded
// servers, an OpenKVTCP client store, concurrent PutBatch/GetBatch
// traffic, and a server closed mid-run — crash tolerance over real
// sockets, which the simulated-network suites cannot exercise.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"luckystore"
)

func startKVCluster(t *testing.T, cfg luckystore.Config, opts ...luckystore.TCPOption) ([]*luckystore.TCPServer, map[luckystore.ProcID]string) {
	t.Helper()
	servers := make([]*luckystore.TCPServer, cfg.S())
	addrs := make([]string, cfg.S())
	for i := range servers {
		srv, err := luckystore.ListenTCPKV(i, "127.0.0.1:0", opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	return servers, luckystore.ServerAddrs(addrs)
}

// TestTCPKVBatchWithServerCrashMidRun drives batched multi-key traffic
// over loopback TCP against sharded servers, closes one server halfway
// through, and checks every key still round-trips correctly: to the
// protocol a closed TCP server is a crashed server, within the t=1
// budget.
func TestTCPKVBatchWithServerCrashMidRun(t *testing.T) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 20 * time.Second}
	servers, addrMap := startKVCluster(t, cfg, luckystore.WithTCPShards(4))

	store, err := luckystore.OpenKVTCP(cfg, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const keys = 16
	batch := func(round int) map[string]luckystore.Value {
		puts := make(map[string]luckystore.Value, keys)
		for k := 0; k < keys; k++ {
			puts[fmt.Sprintf("key-%d", k)] = luckystore.Value(fmt.Sprintf("r%d", round))
		}
		return puts
	}
	keyList := make([]string, keys)
	for k := range keyList {
		keyList[k] = fmt.Sprintf("key-%d", k)
	}

	check := func(round int) {
		t.Helper()
		got, err := store.GetBatch(round%cfg.NumReaders, keyList)
		if err != nil {
			t.Fatalf("round %d GetBatch: %v", round, err)
		}
		want := luckystore.Value(fmt.Sprintf("r%d", round))
		for _, k := range keyList {
			if got[k].Val != want {
				t.Fatalf("round %d: %s = %q, want %q", round, k, got[k].Val, want)
			}
		}
	}

	// Rounds 1–2 with all servers up.
	for round := 1; round <= 2; round++ {
		if err := store.PutBatch(batch(round)); err != nil {
			t.Fatalf("round %d PutBatch: %v", round, err)
		}
		check(round)
	}

	// Crash one server mid-run (t=1 tolerated), with a put in flight so
	// the crash lands under load rather than between operations.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		servers[2].Close()
	}()
	if err := store.PutBatch(batch(3)); err != nil {
		t.Fatalf("PutBatch during crash: %v", err)
	}
	wg.Wait()
	check(3)

	// Rounds after the crash keep full batch semantics on S−1 servers.
	if err := store.PutBatch(batch(4)); err != nil {
		t.Fatalf("PutBatch after crash: %v", err)
	}
	check(4)

	// Metadata reflects the post-crash regime without allocating state
	// for unknown keys.
	if pm, err := store.PutMeta("key-0"); err != nil || pm.TS != 4 {
		t.Errorf("PutMeta(key-0) = %+v, %v; want ts=4", pm, err)
	}
	if pm, err := store.PutMeta("no-such-key"); err != nil || pm != (luckystore.PutMeta{}) {
		t.Errorf("PutMeta on unused key = %+v, %v; want zero meta", pm, err)
	}
}

// TestTCPKVConcurrentClients runs put and get load from many goroutines
// at once over the sharded TCP path — the contention pattern the
// per-shard workers exist for — and is most interesting under -race.
func TestTCPKVConcurrentClients(t *testing.T) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 20 * time.Second}
	_, addrMap := startKVCluster(t, cfg, luckystore.WithTCPShards(4))

	store, err := luckystore.OpenKVTCP(cfg, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const workers = 8
	const opsPerWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("worker-%d", w)
			for i := 1; i <= opsPerWorker; i++ {
				if err := store.Put(key, luckystore.Value(fmt.Sprintf("v%d", i))); err != nil {
					errs <- fmt.Errorf("%s put %d: %w", key, i, err)
					return
				}
				got, err := store.Get(w%cfg.NumReaders, key)
				if err != nil {
					errs <- fmt.Errorf("%s get %d: %w", key, i, err)
					return
				}
				if got.Val != luckystore.Value(fmt.Sprintf("v%d", i)) {
					errs <- fmt.Errorf("%s read %q after writing v%d", key, got.Val, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
