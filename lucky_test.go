package luckystore_test

import (
	"errors"
	"testing"
	"time"

	"luckystore"
)

func quickCfg() luckystore.Config {
	return luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond}
}

func TestFacadeQuickstart(t *testing.T) {
	cluster, err := luckystore.New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("hello"); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "hello" || got.TS != 1 {
		t.Errorf("Read() = %v", got)
	}
	if !cluster.Writer().LastMeta().Fast || !cluster.Reader(0).LastMeta().Fast() {
		t.Error("lucky ops not fast through the facade")
	}
}

func TestFacadeBottomAndValidation(t *testing.T) {
	if !luckystore.Bottom().IsBottom() {
		t.Error("Bottom() not bottom")
	}
	if err := luckystore.ValidateConfig(luckystore.Config{T: 1, B: 2}); err == nil {
		t.Error("invalid config accepted")
	}
	if err := luckystore.ValidateConfig(quickCfg()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cluster, err := luckystore.New(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write(""); !errors.Is(err, luckystore.ErrBottomValue) {
		t.Errorf("Write(⊥) = %v", err)
	}
}

func TestFacadeByzantineOptions(t *testing.T) {
	cluster, err := luckystore.New(quickCfg(),
		luckystore.WithForgingServer(0, 999, "forged"))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write("real"); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "real" {
		t.Errorf("Read() = %v, forged value leaked", got)
	}
}

func TestFacadeCrashedAndMute(t *testing.T) {
	cluster, err := luckystore.New(quickCfg(),
		luckystore.WithCrashedServer(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if !cluster.Writer().LastMeta().Fast {
		t.Error("write not fast despite one crash within fw")
	}

	c2, err := luckystore.New(quickCfg(), luckystore.WithMuteServer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Reader(1).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
}

func TestFacadeStaleAndLiar(t *testing.T) {
	cluster, err := luckystore.New(quickCfg(),
		luckystore.WithStaleServer(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.IsBottom() {
		t.Error("stale server dragged read to ⊥")
	}

	c2, err := luckystore.New(quickCfg(), luckystore.WithRandomLiarServer(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Writer().Write("v2"); err != nil {
		t.Fatal(err)
	}
	got, err = c2.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v2" {
		t.Errorf("Read() = %v", got)
	}
}

func TestFacadeTCPDeployment(t *testing.T) {
	cfg := luckystore.Config{T: 1, B: 0, Fw: 1, NumReaders: 1,
		RoundTimeout: 50 * time.Millisecond}
	addrs := make([]string, cfg.S())
	for i := range addrs {
		srv, err := luckystore.ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		if srv.ID() != luckystore.ServerID(i) {
			t.Errorf("server id = %s", srv.ID())
		}
		addrs[i] = srv.Addr()
	}
	servers := luckystore.ServerAddrs(addrs)

	w, wClose, err := luckystore.NewTCPWriter(cfg, servers)
	if err != nil {
		t.Fatal(err)
	}
	defer wClose.Close()
	if err := w.Write("tcp-value"); err != nil {
		t.Fatal(err)
	}

	r, rClose, err := luckystore.NewTCPReader(cfg, 0, servers)
	if err != nil {
		t.Fatal(err)
	}
	defer rClose.Close()
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "tcp-value" {
		t.Errorf("Read() = %v", got)
	}
}

func TestFacadeTCPValidation(t *testing.T) {
	cfg := quickCfg()
	if _, _, err := luckystore.NewTCPWriter(cfg, nil); err == nil {
		t.Error("writer accepted empty address map")
	}
	if _, _, err := luckystore.NewTCPReader(luckystore.Config{T: -1}, 0, nil); err == nil {
		t.Error("reader accepted invalid config")
	}
}
