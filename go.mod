module luckystore

go 1.24
