// Package luckystore is a Go implementation of the robust atomic
// storage of Guerraoui, Levy and Vukolić, "Lucky Read/Write Access to
// Robust Atomic Storage" (DSN 2006): a single-writer multi-reader
// atomic register emulated over S = 2t + b + 1 servers of which t may
// fail, b of them arbitrarily (Byzantine), without data authentication.
//
// Its distinguishing property is the tight best-case bound the paper
// proves: every lucky operation — one that runs synchronously and
// without read/write contention — completes in a single communication
// round-trip, with writes tolerating up to fw actual failures and reads
// up to fr, for any split fw + fr = t − b.
//
// # Quick start
//
//	cfg := luckystore.Config{T: 2, B: 1, Fw: 1, NumReaders: 2}
//	cluster, err := luckystore.New(cfg)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	w := cluster.Writer()
//	_ = w.Write("hello")             // 1 round-trip when lucky
//	got, _ := cluster.Reader(0).Read() // 1 round-trip when lucky
//	fmt.Println(got.Val, got.TS)
//
// # What lives where
//
//   - internal/core — the paper's algorithm (Figures 1–3)
//   - internal/twophase — Appendix C: 2-round writes at
//     S = 2t+b+min(b,fr)+1
//   - internal/regular — Appendix D: regular semantics, malicious
//     readers tolerated, fw = t−b, fr = t
//   - internal/abd — the ABD crash-only baseline
//   - internal/keyed, internal/kv — the multi-register layer behind
//     OpenKV/OpenKVTCP: every key an independent atomic register, run
//     on a sharded engine (per-server shard workers, batched frames,
//     async/batch APIs — see DESIGN.md §2)
//   - internal/experiments — every paper claim as a measured experiment
//     (run them with cmd/luckybench)
//   - internal/tcpnet — the TCP transport behind ListenTCP and the
//     NewTCPWriter/NewTCPReader client helpers
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// measured reproduction of the paper's results.
package luckystore
