package luckystore_test

import (
	"testing"
	"time"

	"luckystore"
)

func TestFacadeRegularVariant(t *testing.T) {
	cfg := luckystore.RegularConfig{T: 2, B: 1, NumReaders: 2,
		RoundTimeout: 15 * time.Millisecond}
	cluster, err := luckystore.NewRegular(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	// The regular variant's maximal read budget: fr = t failures.
	cluster.CrashServer(0)
	cluster.CrashServer(1)
	got, err := cluster.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" {
		t.Errorf("Read() = %v", got)
	}
	if !cluster.Reader(0).LastMeta().Fast() {
		t.Error("regular read not fast despite fr = t budget")
	}
}

func TestFacadeTwoPhaseVariant(t *testing.T) {
	cfg := luckystore.TwoPhaseConfig{T: 2, B: 1, Fr: 1, NumReaders: 1,
		RoundTimeout: 15 * time.Millisecond}
	if cfg.S() != 7 {
		t.Fatalf("S = %d, want 2t+b+min(b,fr)+1 = 7", cfg.S())
	}
	cluster, err := luckystore.NewTwoPhase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.Writer().Write("v"); err != nil {
		t.Fatal(err)
	}
	if cluster.Writer().Rounds() != 2 {
		t.Errorf("two-phase write rounds = %d, want 2", cluster.Writer().Rounds())
	}
	cluster.CrashServer(0) // fr = 1 budget
	got, err := cluster.Reader(0).Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Val != "v" || !cluster.Reader(0).LastMeta().Fast() {
		t.Errorf("two-phase read = %v, meta %+v", got, cluster.Reader(0).LastMeta())
	}
}

func TestFacadeVariantValidation(t *testing.T) {
	if _, err := luckystore.NewRegular(luckystore.RegularConfig{T: 1, B: 2}); err == nil {
		t.Error("invalid regular config accepted")
	}
	if _, err := luckystore.NewTwoPhase(luckystore.TwoPhaseConfig{T: 2, B: 1, Fr: 9}); err == nil {
		t.Error("invalid two-phase config accepted")
	}
}
