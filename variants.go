package luckystore

import (
	"luckystore/internal/regular"
	"luckystore/internal/twophase"
)

// The Appendix D regular variant: a SWMR robust *regular* storage that
// gives up the read hierarchy (two overlapping readers may observe a
// new/old inversion) in exchange for tolerating arbitrarily many
// malicious readers — servers ignore reader write-backs — and the
// maximal fast thresholds: lucky WRITEs stay one round-trip despite
// t − b failures and lucky READs despite t failures.
type (
	// RegularConfig parameterizes a regular-variant deployment.
	RegularConfig = regular.Config
	// RegularCluster is a running regular-variant deployment.
	RegularCluster = regular.Cluster
	// RegularWriter is the regular-variant writer client.
	RegularWriter = regular.Writer
	// RegularReader is a regular-variant reader client.
	RegularReader = regular.Reader
)

// NewRegular builds and starts an Appendix D regular-variant cluster on
// an in-memory network.
func NewRegular(cfg RegularConfig) (*RegularCluster, error) {
	return regular.NewCluster(cfg)
}

// The Appendix C two-phase variant: every WRITE completes in at most
// two communication round-trips (no fast-write path, but a better worst
// case than the core algorithm's three rounds) and every lucky READ is
// fast despite fr failures, at the price of S = 2t + b + min(b, fr) + 1
// servers — exactly one more than optimal when b, fr > 0, which
// Proposition 5 proves necessary.
type (
	// TwoPhaseConfig parameterizes a two-phase deployment.
	TwoPhaseConfig = twophase.Config
	// TwoPhaseCluster is a running two-phase deployment.
	TwoPhaseCluster = twophase.Cluster
	// TwoPhaseWriter is the two-phase writer client.
	TwoPhaseWriter = twophase.Writer
	// TwoPhaseReader is a two-phase reader client.
	TwoPhaseReader = twophase.Reader
)

// NewTwoPhase builds and starts an Appendix C two-phase cluster on an
// in-memory network.
func NewTwoPhase(cfg TwoPhaseConfig) (*TwoPhaseCluster, error) {
	return twophase.NewCluster(cfg)
}
