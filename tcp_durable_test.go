package luckystore_test

// Durable TCP e2e (PR 8 tentpole): disk-backed servers recover from
// their data directories after every process is torn down — the
// in-memory state is gone, so anything the reborn cluster serves, it
// replayed from its WALs. Pre-crash stamps must survive exactly:
// serving a lower stamp after acknowledging a write would be a
// regression of acknowledged state, which the model counts Byzantine.

import (
	"path/filepath"
	"testing"
	"time"

	"luckystore"
)

// durableTCPCfg runs in multi-writer mode (Writers: 2): the writer
// client that reconnects after the cluster reboot is itself a fresh
// process, and only the MW stamp-query round lets it bind timestamps
// above the recovered state instead of replaying stale ones.
func durableTCPCfg() luckystore.Config {
	return luckystore.Config{T: 1, B: 0, Fw: 0, NumReaders: 1, Writers: 2,
		RoundTimeout: 50 * time.Millisecond, OpTimeout: 10 * time.Second}
}

// startDurableKVCluster starts S disk-backed KV servers, each with its
// own subdirectory of root.
func startDurableKVCluster(t *testing.T, cfg luckystore.Config, root string, addrs []string) []*luckystore.TCPServer {
	t.Helper()
	servers := make([]*luckystore.TCPServer, cfg.S())
	for i := range servers {
		addr := "127.0.0.1:0"
		if addrs != nil {
			addr = addrs[i]
		}
		var srv *luckystore.TCPServer
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			srv, err = luckystore.ListenTCPKV(i, addr,
				luckystore.WithTCPShards(2),
				luckystore.WithTCPDataDir(filepath.Join(root, srv0Name(i))))
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond) // address may linger in TIME_WAIT
		}
		if err != nil {
			t.Fatalf("listen %d on %s: %v", i, addr, err)
		}
		servers[i] = srv
	}
	return servers
}

func srv0Name(i int) string { return string(rune('a'+i)) + "-data" }

// TestTCPKVDurableRestartServesPreCrashState kills every server in a
// disk-backed KV cluster and restarts them on the same addresses from
// the same directories: the reborn cluster must serve the exact
// pre-crash pairs — timestamps included — with zero warm memory to
// lean on. This is the "RestartServer genuinely disk-backed" pin for
// the TCP deployment.
func TestTCPKVDurableRestartServesPreCrashState(t *testing.T) {
	cfg := durableTCPCfg()
	root := t.TempDir()
	servers := startDurableKVCluster(t, cfg, root, nil)
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}

	store, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(addrs))
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"alpha", "beta", "gamma"}
	for _, k := range keys {
		if err := store.Put(k, luckystore.Value("v1-"+k)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
		if err := store.Put(k, luckystore.Value("v2-"+k)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	want := make(map[string]luckystore.Tagged, len(keys))
	for _, k := range keys {
		got, err := store.Get(0, k)
		if err != nil {
			t.Fatalf("pre-crash get %q: %v", k, err)
		}
		want[k] = got
	}
	store.Close()

	// Total cluster death: every process gone, every register's memory
	// with it.
	for _, s := range servers {
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	reborn := startDurableKVCluster(t, cfg, root, addrs)
	defer func() {
		for _, s := range reborn {
			s.Close()
		}
	}()

	store2, err := luckystore.OpenKVTCP(cfg, luckystore.ServerAddrs(addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	for _, k := range keys {
		got, err := store2.Get(0, k)
		if err != nil {
			t.Fatalf("post-restart get %q: %v", k, err)
		}
		if got != want[k] {
			t.Fatalf("post-restart get %q = %+v, want pre-crash %+v", k, got, want[k])
		}
	}
	// And the recovered cluster still makes progress.
	if err := store2.Put("alpha", "v3"); err != nil {
		t.Fatalf("post-restart put: %v", err)
	}
	got, err := store2.Get(0, "alpha")
	if err != nil || got.Val != "v3" {
		t.Fatalf("post-restart rw cycle = %v, %v", got, err)
	}
}

// TestTCPDurableSingleRegister pins the same contract for the plain
// (single-register) ListenTCP path with WithTCPDataDir.
func TestTCPDurableSingleRegister(t *testing.T) {
	cfg := durableTCPCfg()
	root := t.TempDir()
	addrs := make([]string, cfg.S())
	servers := make([]*luckystore.TCPServer, cfg.S())
	for i := range servers {
		srv, err := luckystore.ListenTCP(i, "127.0.0.1:0",
			luckystore.WithTCPDataDir(filepath.Join(root, srv0Name(i))))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	addrMap := luckystore.ServerAddrs(addrs)

	w, wc, err := luckystore.NewTCPWriter(cfg, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("persisted"); err != nil {
		t.Fatalf("write: %v", err)
	}
	wc.Close()
	for _, s := range servers {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for i := range servers {
		var srv *luckystore.TCPServer
		for attempt := 0; attempt < 100; attempt++ {
			srv, err = luckystore.ListenTCP(i, addrs[i],
				luckystore.WithTCPDataDir(filepath.Join(root, srv0Name(i))))
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("relisten %d: %v", i, err)
		}
		defer srv.Close()
	}
	r, rc, err := luckystore.NewTCPReader(cfg, 0, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := r.Read()
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if got.Val != "persisted" {
		t.Fatalf("read %q after restart, want %q", got.Val, "persisted")
	}
}
