package luckystore_test

// Allocation benchmarks for the steady-state operation hot path: the
// per-op allocation cost of core WRITE/READ on the in-memory network,
// the same operations through the KV engine, and the heap held per
// idle register on a server. The benchmark bodies live in
// internal/allocbench, shared with cmd/luckybench's -allocs mode
// (which emits the machine-readable BENCH_core.json); EXPERIMENTS.md
// records the before/after tables.

import (
	"testing"

	"luckystore/internal/allocbench"
)

func BenchmarkPutAllocs(b *testing.B)   { allocbench.CorePut(b) }
func BenchmarkGetAllocs(b *testing.B)   { allocbench.CoreGet(b) }
func BenchmarkKVPutAllocs(b *testing.B) { allocbench.KVPut(b) }
func BenchmarkKVGetAllocs(b *testing.B) { allocbench.KVGet(b) }
func BenchmarkIdleKeyHeap(b *testing.B) { allocbench.IdleKeyHeap(b) }
